"""Simulated data-centre network: hosts, NICs, links, switch trunk.

Replaces the paper's physical testbed (section 6.2): client and backend
machines with 1 Gbps NICs on one switch, the middlebox with a 10 Gbps NIC
on another, and a 20 Gbps inter-switch trunk.

Model: every transmission serialises through (a) the sender's NIC, (b)
the inter-segment trunk if the endpoints sit on different switches, and
(c) the receiver's NIC.  Each of those is a :class:`RateLimiter` — a
store-and-forward pipe that is busy for ``bytes/rate`` and hands the
frame onward when free.  Propagation/switching latency is a constant per
hop.  TCP/IP framing overhead inflates on-wire bytes by
``WIRE_OVERHEAD`` (1448 payload bytes per 1538-byte Ethernet frame),
which is what caps the Hadoop experiment at the paper's ~7.5 Gbps of
goodput over 8 x 1 Gbps ingress links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.errors import SimulationError
from repro.core.units import GBPS, transmission_time_us
from repro.sim.engine import Engine

#: Ethernet + IP + TCP framing: 1448 payload bytes per 1538 wire bytes.
WIRE_OVERHEAD = 1538.0 / 1448.0

#: One-way propagation + switching latency per segment hop (µs).
HOP_LATENCY_US = 18.0


class RateLimiter:
    """A serialising resource (NIC or trunk): busy for bytes/rate."""

    __slots__ = ("rate_bps", "_free_at")

    def __init__(self, rate_bps: float):
        if rate_bps <= 0:
            raise SimulationError(f"rate must be positive, got {rate_bps}")
        self.rate_bps = rate_bps
        self._free_at = 0.0

    def transmit(self, now_us: float, nbytes: int) -> float:
        """Claim the resource; returns the time the last bit leaves."""
        wire_bytes = nbytes * WIRE_OVERHEAD
        start = max(now_us, self._free_at)
        end = start + transmission_time_us(wire_bytes, self.rate_bps)
        self._free_at = end
        return end

    @property
    def busy_until(self) -> float:
        return self._free_at


@dataclass
class Host:
    """A simulated machine: a named NIC attached to a switch segment."""

    name: str
    nic_rate_bps: float = 10 * GBPS
    segment: str = "core"
    tx: RateLimiter = field(init=False)
    rx: RateLimiter = field(init=False)

    def __post_init__(self):
        self.tx = RateLimiter(self.nic_rate_bps)
        self.rx = RateLimiter(self.nic_rate_bps)


class Network:
    """Hosts plus inter-segment trunks; computes delivery times."""

    def __init__(self, engine: Engine, trunk_rate_bps: float = 20 * GBPS):
        self.engine = engine
        self._hosts: Dict[str, Host] = {}
        self._trunks: Dict[frozenset, RateLimiter] = {}
        self._trunk_rate = trunk_rate_bps

    # -- topology -----------------------------------------------------------

    def add_host(
        self,
        name: str,
        nic_rate_bps: float = 10 * GBPS,
        segment: str = "core",
    ) -> Host:
        if name in self._hosts:
            raise SimulationError(f"duplicate host {name!r}")
        host = Host(name, nic_rate_bps, segment)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        return self._hosts[name]

    def _trunk(self, a: str, b: str) -> Optional[RateLimiter]:
        if a == b:
            return None
        key = frozenset((a, b))
        if key not in self._trunks:
            self._trunks[key] = RateLimiter(self._trunk_rate)
        return self._trunks[key]

    # -- transfer ------------------------------------------------------------

    def deliver(
        self,
        src: Host,
        dst: Host,
        nbytes: int,
        callback: Callable[[], None],
    ) -> float:
        """Schedule ``callback`` when ``nbytes`` from src arrive at dst.

        Returns the arrival time (µs).  Zero-byte control exchanges
        (SYN, FIN) still pay per-hop latency and — like any other frame
        — claim their place in the sender's NIC queue, so a FIN can
        never leave the host ahead of data still serialising behind
        ``src.tx.busy_until``.
        """
        now = self.engine.now
        depart = src.tx.transmit(now, nbytes)
        trunk = self._trunk(src.segment, dst.segment)
        if trunk is not None:
            depart = trunk.transmit(depart + HOP_LATENCY_US, nbytes)
        arrival = dst.rx.transmit(depart + HOP_LATENCY_US, nbytes)
        self.engine.at(arrival, callback)
        return arrival

    def rtt_us(self, src: Host, dst: Host) -> float:
        """Zero-payload round-trip latency estimate between two hosts."""
        hops = 2 if src.segment != dst.segment else 1
        return 2 * hops * HOP_LATENCY_US
