"""TCP stack cost profiles: kernel vs mTCP/DPDK.

This module is the substitution for the paper's mTCP + DPDK port
(section 5, last paragraph): instead of running a user-space TCP stack,
we model a stack as the CPU time its operations cost the middlebox.
The paper's relative results follow from the cost structure:

* the kernel stack pays heavily per connection (socket/VFS setup, §5:
  "high overhead for creating and destroying sockets") and per syscall
  (user/kernel crossings);
* mTCP pays a fraction of both, which is why the non-persistent HTTP
  experiment (Figure 4c) shows a ~4x gap while the persistent one
  (Figure 4a) shows a moderate one;
* beyond ~8 cores the kernel's shared connection tables add contention
  (§6.3: "threads compete over common data structures"), which caps the
  Memcached proxy's kernel scaling in Figure 5.

The absolute numbers are calibrated so single-system peaks land near the
paper's reported values on a simulated 16-core middlebox; EXPERIMENTS.md
records paper-vs-measured for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class StackProfile:
    """CPU cost (µs) charged to the middlebox for stack operations."""

    name: str
    #: server-side cost to accept + register a new connection
    accept_us: float
    #: cost to initiate an outgoing connection (e.g. to a backend)
    connect_us: float
    #: cost to tear down a connection (FIN handling, socket release)
    teardown_us: float
    #: cost of one read from a socket (syscall / ring dequeue)
    read_op_us: float
    #: cost of one write to a socket
    write_op_us: float
    #: copy cost per payload byte crossing the stack
    per_byte_us: float
    #: event-notification dispatch cost per socket wakeup (epoll vs ring poll)
    event_us: float
    #: extra cost per stack operation per active core beyond
    #: ``contention_free_cores`` — shared-structure lock contention
    contention_us_per_core: float
    contention_free_cores: int = 8

    def op_overhead_us(self, cores: int) -> float:
        """Per-operation contention penalty when running on ``cores``."""
        excess = max(0, cores - self.contention_free_cores)
        return excess * self.contention_us_per_core

    def read_cost_us(self, nbytes: int, cores: int = 1) -> float:
        return (
            self.read_op_us
            + self.event_us
            + nbytes * self.per_byte_us
            + self.op_overhead_us(cores)
        )

    def write_cost_us(self, nbytes: int, cores: int = 1) -> float:
        return (
            self.write_op_us
            + nbytes * self.per_byte_us
            + self.op_overhead_us(cores)
        )


#: Linux kernel TCP stack (sockets + epoll through the VFS).
KERNEL = StackProfile(
    name="kernel",
    accept_us=120.0,
    connect_us=130.0,
    teardown_us=90.0,
    read_op_us=2.3,
    write_op_us=2.1,
    per_byte_us=0.0020,
    event_us=1.0,
    contention_us_per_core=0.25,
    contention_free_cores=8,
)

#: mTCP user-space stack over DPDK (per-core TCB tables, batched I/O).
MTCP = StackProfile(
    name="mtcp",
    accept_us=10.0,
    connect_us=12.0,
    teardown_us=6.0,
    read_op_us=0.9,
    write_op_us=0.85,
    per_byte_us=0.0018,
    event_us=0.35,
    contention_us_per_core=0.0,
    contention_free_cores=16,
)

PROFILES = {profile.name: profile for profile in (KERNEL, MTCP)}


def profile(name: str) -> StackProfile:
    """Look up a stack profile by name ('kernel' or 'mtcp')."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown stack profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None


@dataclass(frozen=True)
class CoreTopology:
    """Socket layout of the middlebox's cores.

    The paper's testbed is a two-socket Xeon; its scheduler treats all
    cores as equidistant, which is exactly the scenario the ``numa``
    scheduling policy improves on.  Cores are numbered in socket-major
    (blocked) order, as Linux enumerates them: cores ``0..c-1`` are
    socket 0, ``c..2c-1`` socket 1, and so on; a worker count beyond
    ``sockets * cores_per_socket`` wraps around.

    Socket pairs are separated by interconnect *hops*
    (:meth:`socket_hops`): by default the sockets form a ring — adjacent
    sockets are one QPI hop apart, opposite corners of a four-socket box
    two — or pass ``socket_distances`` (a square hop matrix, indexed
    ``[a][b]``) to model an arbitrary interconnect.
    ``remote_steal_penalty_us`` is the extra cost the mechanism charges
    a steal *per hop* between the thief's and the victim's sockets (cold
    remote cache lines + interconnect forwarding), on top of the flat
    ``STEAL_US``; on a two-socket box every remote pair is one hop, so
    this degenerates to the flat penalty of the paper's testbed.
    """

    name: str
    sockets: int
    cores_per_socket: int
    remote_steal_penalty_us: float
    #: Optional explicit hop matrix ``socket_distances[a][b]``; ``None``
    #: means a ring (``min(|a-b|, sockets-|a-b|)``).
    socket_distances: Optional[Tuple[Tuple[int, ...], ...]] = None

    def __post_init__(self):
        if self.sockets < 1:
            raise ValueError(f"need at least one socket, got {self.sockets}")
        if self.cores_per_socket < 1:
            raise ValueError(
                f"need at least one core per socket, got "
                f"{self.cores_per_socket}"
            )
        if self.remote_steal_penalty_us < 0:
            raise ValueError(
                f"remote steal penalty cannot be negative, got "
                f"{self.remote_steal_penalty_us}"
            )
        if self.socket_distances is not None:
            matrix = self.socket_distances
            if len(matrix) != self.sockets or any(
                len(row) != self.sockets for row in matrix
            ):
                raise ValueError(
                    f"socket distance matrix must be {self.sockets}x"
                    f"{self.sockets}, got {matrix!r}"
                )
            for a in range(self.sockets):
                if matrix[a][a] != 0:
                    raise ValueError(
                        f"socket {a} must be 0 hops from itself, got "
                        f"{matrix[a][a]}"
                    )
                for b in range(self.sockets):
                    if matrix[a][b] < 0:
                        raise ValueError(
                            f"hop counts cannot be negative, got "
                            f"{matrix[a][b]} for sockets {a}->{b}"
                        )
                    if matrix[a][b] != matrix[b][a]:
                        raise ValueError(
                            f"hop matrix must be symmetric, but "
                            f"{a}->{b} is {matrix[a][b]} while "
                            f"{b}->{a} is {matrix[b][a]}"
                        )
                    if a != b and matrix[a][b] == 0:
                        raise ValueError(
                            f"distinct sockets {a} and {b} cannot be "
                            "0 hops apart"
                        )

    def socket_of(self, core: int) -> int:
        """Socket that core index ``core`` lives on."""
        return (core // self.cores_per_socket) % self.sockets

    def socket_hops(self, a: int, b: int) -> int:
        """Interconnect hops between sockets ``a`` and ``b``.

        0 for the same socket; otherwise the explicit matrix entry or
        the ring distance.  On a two-socket box every remote pair is one
        hop, so pre-matrix behaviour is preserved exactly.
        """
        if a == b:
            return 0
        if self.socket_distances is not None:
            return self.socket_distances[a][b]
        span = abs(a - b)
        return min(span, self.sockets - span)

    def distance(self, a: int, b: int) -> int:
        """Hops between the sockets of cores ``a`` and ``b``.

        0 for same-socket core pairs; cross-socket pairs report the full
        hop count (1 on two-socket boxes, up to ``sockets // 2`` on a
        ring), not a flat 0/1 flag.
        """
        return self.socket_hops(self.socket_of(a), self.socket_of(b))

    def steal_penalty_us(self, thief_socket: int, victim_socket: int) -> float:
        """Cross-socket surcharge for one steal: hops x per-hop penalty."""
        return (
            self.socket_hops(thief_socket, victim_socket)
            * self.remote_steal_penalty_us
        )


#: Everything on one socket: no remote steals, the paper's implicit model.
UNIFORM = CoreTopology(
    name="uniform", sockets=1, cores_per_socket=16,
    remote_steal_penalty_us=0.0,
)

#: The paper's testbed shape: two 8-core sockets.
TWO_SOCKET = CoreTopology(
    name="two-socket", sockets=2, cores_per_socket=8,
    remote_steal_penalty_us=1.8,
)

#: A denser NUMA box: four 4-core sockets on a ring interconnect —
#: adjacent sockets are one hop, opposite ones two, so far steals cost
#: twice the per-hop penalty.
FOUR_SOCKET = CoreTopology(
    name="four-socket", sockets=4, cores_per_socket=4,
    remote_steal_penalty_us=2.6,
)

TOPOLOGIES = {t.name: t for t in (UNIFORM, TWO_SOCKET, FOUR_SOCKET)}


def core_topology(name: str) -> CoreTopology:
    """Look up a core topology by name."""
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown core topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
