"""Simulated network substrate: hosts/NICs, TCP streams, stack profiles."""

from repro.net.simnet import HOP_LATENCY_US, Host, Network, RateLimiter, WIRE_OVERHEAD
from repro.net.stackprofiles import KERNEL, MTCP, PROFILES, StackProfile, profile
from repro.net.tcp import TcpNetwork, TcpSocket

__all__ = [
    "HOP_LATENCY_US",
    "Host",
    "Network",
    "RateLimiter",
    "WIRE_OVERHEAD",
    "KERNEL",
    "MTCP",
    "PROFILES",
    "StackProfile",
    "profile",
    "TcpNetwork",
    "TcpSocket",
]
