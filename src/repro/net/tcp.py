"""Simulated TCP connections over the simulated network.

A :class:`TcpSocket` is one endpoint of an established connection: a
reliable, ordered byte stream.  Data hand-off pays the network costs
(sender NIC, trunk, receiver NIC, hop latency) modelled by
:class:`repro.net.simnet.Network`; CPU costs of the middlebox's stack are
*not* charged here — they are charged by the platform's I/O tasks using a
:class:`repro.net.stackprofiles.StackProfile`, mirroring where those
cycles are burned in the real system.

Connection establishment models the three-way handshake as one RTT of
wire latency before both endpoints exist; teardown delivers an EOF event
to the peer (section 5's application-dispatcher close handling keys off
this).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.core.ids import IdAllocator
from repro.net.simnet import Host, Network
from repro.sim.engine import Engine


class TcpSocket:
    """One endpoint of an established simulated TCP connection."""

    def __init__(self, net: "TcpNetwork", host: Host, conn_id: str, role: str):
        self._net = net
        self.host = host
        self.conn_id = conn_id
        self.role = role  # 'client' or 'server'
        self.peer: Optional["TcpSocket"] = None
        self.closed = False
        self._recv_buffer: List[bytes] = []
        self._recv_callback: Optional[Callable[[bytes], None]] = None
        self._close_callback: Optional[Callable[[], None]] = None
        self._peer_closed = False
        self._flush_scheduled = False
        self._close_delivered = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.bytes_dropped = 0

    # -- sending ------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Transmit ``data`` to the peer (arrives after network delays)."""
        if self.closed:
            raise SimulationError(f"send on closed socket {self.conn_id}")
        if not data:
            return
        self.bytes_sent += len(data)
        peer = self.peer
        self._net.network.deliver(
            self.host, peer.host, len(data), lambda: peer._on_data(data)
        )

    def close(self) -> None:
        """Close this endpoint; the peer sees EOF after one hop latency."""
        if self.closed:
            return
        self.closed = True
        peer = self.peer
        if peer is not None and not peer.closed:
            self._net.network.deliver(
                self.host, peer.host, 0, peer._on_peer_close
            )

    # -- receiving -------------------------------------------------------------

    def on_receive(self, callback: Callable[[bytes], None]) -> None:
        """Register the data callback.

        Buffered bytes flush on a deferred engine tick (never
        synchronously inside the registration call), so data and EOF
        delivery are both engine-ordered regardless of which callback
        the application registers first.
        """
        self._recv_callback = callback
        if self._recv_buffer and not self._flush_scheduled:
            self._flush_scheduled = True
            self._net.engine.schedule(0.0, self._flush_recv)

    def on_close(self, callback: Callable[[], None]) -> None:
        self._close_callback = callback
        self._maybe_deliver_close()

    def _flush_recv(self) -> None:
        self._flush_scheduled = False
        callback = self._recv_callback
        if callback is None:
            return  # keep buffering; a later on_receive reschedules
        pending, self._recv_buffer = self._recv_buffer, []
        for chunk in pending:
            callback(chunk)
        self._maybe_deliver_close()

    def _on_data(self, data: bytes) -> None:
        if self.closed:
            # Locally closed: bytes still in flight are dropped on the
            # floor, but accounted for rather than silently lost.
            self.bytes_dropped += len(data)
            return
        self.bytes_received += len(data)
        if self._recv_callback is not None and not self._recv_buffer:
            self._recv_callback(data)
        else:
            self._recv_buffer.append(data)

    def _on_peer_close(self) -> None:
        if self._peer_closed:
            return
        self._peer_closed = True
        self._maybe_deliver_close()

    def _maybe_deliver_close(self) -> None:
        """Deliver EOF exactly once, deferred, and never while earlier
        bytes sit undelivered in the receive buffer (stream order)."""
        if (
            not self._peer_closed
            or self._close_delivered
            or self._close_callback is None
            or self._recv_buffer
        ):
            return
        self._close_delivered = True
        self._net.engine.schedule(0.0, self._close_callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TcpSocket({self.conn_id}:{self.role}@{self.host.name})"


class TcpNetwork:
    """Listener registry and connection establishment over a Network."""

    def __init__(self, engine: Engine, network: Optional[Network] = None):
        self.engine = engine
        self.network = network if network is not None else Network(engine)
        self._listeners: Dict[Tuple[str, int], Callable[[TcpSocket], None]] = {}
        self._conn_ids = IdAllocator("conn")
        self.connections_established = 0

    # -- topology passthrough -------------------------------------------------

    def add_host(self, name: str, nic_rate_bps: float, segment: str = "core") -> Host:
        return self.network.add_host(name, nic_rate_bps, segment)

    # -- listening ---------------------------------------------------------------

    def listen(
        self, host: Host, port: int, on_accept: Callable[[TcpSocket], None]
    ) -> None:
        """Register an accept callback for (host, port)."""
        key = (host.name, port)
        if key in self._listeners:
            raise SimulationError(f"port {port} already bound on {host.name}")
        self._listeners[key] = on_accept

    def unlisten(self, host: Host, port: int) -> None:
        self._listeners.pop((host.name, port), None)

    # -- connecting ----------------------------------------------------------------

    def connect(
        self,
        src: Host,
        dst: Host,
        port: int,
        on_connected: Callable[[TcpSocket], None],
    ) -> None:
        """Three-way handshake: after ~1 RTT the acceptor receives the
        server socket and the caller receives the client socket."""
        key = (dst.name, port)
        acceptor = self._listeners.get(key)
        if acceptor is None:
            raise SimulationError(
                f"connection refused: nothing listening on {dst.name}:{port}"
            )
        conn_id = self._conn_ids.next_id()
        client = TcpSocket(self, src, conn_id, "client")
        server = TcpSocket(self, dst, conn_id, "server")
        client.peer = server
        server.peer = client

        def syn_arrived():
            # SYN-ACK travels back; connection usable at the client after
            # the full round trip, at the server on the final ACK.
            self.network.deliver(dst, src, 0, established)

        def established():
            self.connections_established += 1
            acceptor(server)
            on_connected(client)

        self.network.deliver(src, dst, 0, syn_arrived)
