"""Static type checker for FLICK programs.

Checks the properties the paper relies on for safe shared execution
(section 4.3): strong static typing, typed channels with direction
restrictions (a ``-/T`` channel can never be read), record field access
limited to named fields (anonymous ``_`` fields are unaddressable), and
argument/return compatibility for every call — including the implicit
message argument appended by pipeline stages.

The checker produces a :class:`CheckedProgram` that the compiler consumes:
resolved record layouts, function signatures and per-process channel
signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import FlickTypeError
from repro.lang import ast
from repro.lang import types as ty
from repro.lang.builtins import BUILTINS, HIGHER_ORDER, VALUE_BUILTINS


@dataclass
class CheckedProgram:
    """Result of type checking: the program plus resolved signatures.

    ``accessed_fields`` maps each record type name to the set of fields
    the program actually reads, writes or constructs.  The compiler uses
    it to generate *specialised* parsers that decode only the required
    fields (section 4.2: other fields are skipped or copied verbatim).
    """

    program: ast.Program
    records: Dict[str, ty.RecordType]
    functions: Dict[str, ty.FunType]
    proc_params: Dict[str, Tuple[Tuple[str, ty.Type], ...]]
    accessed_fields: Dict[str, frozenset] = field(default_factory=dict)

    def record(self, name: str) -> ty.RecordType:
        return self.records[name]


class _Scope:
    """A lexical scope chain of variable bindings."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self._parent = parent
        self._bindings: Dict[str, ty.Type] = {}

    def lookup(self, name: str) -> Optional[ty.Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope._bindings:
                return scope._bindings[name]
            scope = scope._parent
        return None

    def bind(self, name: str, t: ty.Type) -> None:
        self._bindings[name] = t

    def child(self) -> "_Scope":
        return _Scope(self)


class TypeChecker:
    """Checks one :class:`ast.Program`; use :func:`check_program`."""

    def __init__(self, program: ast.Program):
        self._program = program
        self._records: Dict[str, ty.RecordType] = {}
        self._functions: Dict[str, ty.FunType] = {}
        self._fun_decls: Dict[str, ast.FunDecl] = {}
        self._proc_params: Dict[str, Tuple[Tuple[str, ty.Type], ...]] = {}
        self._accessed: Dict[str, set] = {}

    # -- entry point ------------------------------------------------------

    def check(self) -> CheckedProgram:
        for decl in self._program.types:
            self._declare_record(decl)
        for decl in self._program.funs:
            self._declare_function(decl)
        for decl in self._program.funs:
            self._check_function(decl)
        for decl in self._program.procs:
            self._check_process(decl)
        return CheckedProgram(
            self._program,
            dict(self._records),
            dict(self._functions),
            dict(self._proc_params),
            {name: frozenset(fields) for name, fields in self._accessed.items()},
        )

    def _note_access(self, record: ty.RecordType, fname: str) -> None:
        self._accessed.setdefault(record.name, set()).add(fname)

    # -- declaration passes --------------------------------------------------

    def _declare_record(self, decl: ast.TypeDecl) -> None:
        if decl.name in self._records or ty.primitive(decl.name):
            raise FlickTypeError(
                f"duplicate type name {decl.name!r}", decl.location
            )
        fields: List[Tuple[str, ty.Type]] = []
        seen = set()
        for fdecl in decl.fields:
            if fdecl.name is None:
                continue  # anonymous wire-only field
            if fdecl.name in seen:
                raise FlickTypeError(
                    f"duplicate field {fdecl.name!r} in type {decl.name!r}",
                    fdecl.location,
                )
            seen.add(fdecl.name)
            fields.append((fdecl.name, self._resolve(fdecl.type, fdecl.location)))
        self._records[decl.name] = ty.RecordType(decl.name, tuple(fields))

    def _declare_function(self, decl: ast.FunDecl) -> None:
        if decl.name in self._functions or decl.name in BUILTINS:
            raise FlickTypeError(
                f"duplicate function name {decl.name!r}", decl.location
            )
        params = tuple(
            self._resolve(p.type, p.location) for p in decl.params
        )
        returns = tuple(self._resolve(r, decl.location) for r in decl.returns)
        self._functions[decl.name] = ty.FunType(params, returns)
        self._fun_decls[decl.name] = decl

    # -- type resolution ---------------------------------------------------------

    def _resolve(self, expr: ast.TypeExpr, loc=None) -> ty.Type:
        if isinstance(expr, ast.NamedType):
            prim = ty.primitive(expr.name)
            if prim is not None:
                return prim
            if expr.name in self._records:
                return self._records[expr.name]
            raise FlickTypeError(f"unknown type {expr.name!r}", loc)
        if isinstance(expr, ast.DictType):
            return ty.DictMapType(
                self._resolve(expr.key, loc), self._resolve(expr.value, loc)
            )
        if isinstance(expr, ast.ListType):
            return ty.ListSeqType(self._resolve(expr.element, loc))
        if isinstance(expr, ast.RefType):
            return ty.RefCellType(self._resolve(expr.inner, loc))
        if isinstance(expr, ast.ChannelType):
            read = self._resolve(expr.read, loc) if expr.read else None
            write = self._resolve(expr.write, loc) if expr.write else None
            if read is None and write is None:
                raise FlickTypeError("channel must be readable or writable", loc)
            return ty.ChannelEndType(read, write, expr.is_array)
        raise FlickTypeError(f"unsupported type expression {expr!r}", loc)

    # -- functions ------------------------------------------------------------

    def _check_function(self, decl: ast.FunDecl) -> None:
        scope = _Scope()
        for param in decl.params:
            scope.bind(param.name, self._resolve(param.type, param.location))
        tails = self._check_body(decl.body, scope, in_proc=False)
        returns = self._functions[decl.name].returns
        if returns:
            expected = returns[0]
            for tail in tails:
                if tail is None:
                    raise FlickTypeError(
                        f"function {decl.name!r} must produce a value of type "
                        f"{expected} on every path",
                        decl.location,
                    )
                if not ty.compatible(expected, tail):
                    raise FlickTypeError(
                        f"function {decl.name!r} returns {tail}, "
                        f"declared {expected}",
                        decl.location,
                    )

    def _check_body(
        self, body: Tuple[ast.Stmt, ...], scope: _Scope, in_proc: bool
    ) -> List[Optional[ty.Type]]:
        """Check statements; return the possible tail-expression types."""
        tail: List[Optional[ty.Type]] = [None]
        for stmt in body:
            tail = self._check_stmt(stmt, scope, in_proc)
        return tail

    # -- statements -------------------------------------------------------------

    def _check_stmt(
        self, stmt: ast.Stmt, scope: _Scope, in_proc: bool
    ) -> List[Optional[ty.Type]]:
        if isinstance(stmt, ast.GlobalDecl):
            if not in_proc:
                raise FlickTypeError(
                    "global declarations are only allowed in processes",
                    stmt.location,
                )
            scope.bind(stmt.name, self._check_expr(stmt.init, scope))
            return [None]
        if isinstance(stmt, ast.LetStmt):
            scope.bind(stmt.name, self._check_expr(stmt.value, scope))
            return [None]
        if isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt, scope)
            return [None]
        if isinstance(stmt, ast.SendStmt):
            self._check_send(stmt, scope)
            return [None]
        if isinstance(stmt, ast.IfStmt):
            cond = self._check_expr(stmt.condition, scope)
            if not isinstance(ty.strip_ref(cond), (ty.BoolType, ty.AnyType)):
                raise FlickTypeError(
                    f"if condition must be boolean, got {cond}", stmt.location
                )
            then_tails = self._check_body(stmt.then_body, scope.child(), in_proc)
            if stmt.else_body:
                else_tails = self._check_body(
                    stmt.else_body, scope.child(), in_proc
                )
            else:
                else_tails = [None]
            return then_tails + else_tails
        if isinstance(stmt, ast.PipelineStmt):
            if not in_proc:
                raise FlickTypeError(
                    "pipeline rules are only allowed in process bodies",
                    stmt.location,
                )
            self._check_pipeline(stmt, scope)
            return [None]
        if isinstance(stmt, ast.ExprStmt):
            return [self._check_expr(stmt.expr, scope)]
        raise FlickTypeError(f"unsupported statement {stmt!r}")

    def _check_assign(self, stmt: ast.AssignStmt, scope: _Scope) -> None:
        value_type = self._check_expr(stmt.value, scope)
        target = stmt.target
        if isinstance(target, ast.Var):
            declared = scope.lookup(target.name)
            if declared is None:
                raise FlickTypeError(
                    f"assignment to undeclared variable {target.name!r}",
                    stmt.location,
                )
            if not ty.compatible(declared, value_type):
                raise FlickTypeError(
                    f"cannot assign {value_type} to {target.name!r}: {declared}",
                    stmt.location,
                )
            return
        if isinstance(target, ast.Index):
            container = ty.strip_ref(self._check_expr(target.obj, scope))
            if isinstance(container, ty.DictMapType):
                key_type = self._check_expr(target.index, scope)
                if not ty.compatible(container.key, key_type):
                    raise FlickTypeError(
                        f"dict key type mismatch: {key_type} vs {container.key}",
                        stmt.location,
                    )
                if not ty.compatible(container.value, value_type):
                    raise FlickTypeError(
                        f"dict value type mismatch: {value_type} vs "
                        f"{container.value}",
                        stmt.location,
                    )
                return
            raise FlickTypeError(
                f"cannot index-assign into {container}", stmt.location
            )
        if isinstance(target, ast.FieldAccess):
            obj_type = ty.strip_ref(self._check_expr(target.obj, scope))
            if not isinstance(obj_type, ty.RecordType):
                raise FlickTypeError(
                    f"cannot assign field of non-record {obj_type}", stmt.location
                )
            ftype = obj_type.field_type(target.field)
            if ftype is None:
                raise FlickTypeError(
                    f"record {obj_type.name!r} has no field {target.field!r}",
                    stmt.location,
                )
            if not ty.compatible(ftype, value_type):
                raise FlickTypeError(
                    f"cannot assign {value_type} to field of type {ftype}",
                    stmt.location,
                )
            self._note_access(obj_type, target.field)
            return
        raise FlickTypeError("invalid assignment target", stmt.location)

    def _check_send(self, stmt: ast.SendStmt, scope: _Scope) -> None:
        value_type = self._check_expr(stmt.value, scope)
        chan_type = self._check_expr(stmt.channel, scope)
        chan = ty.strip_ref(chan_type)
        if not isinstance(chan, ty.ChannelEndType) or chan.is_array:
            raise FlickTypeError(
                f"send target must be a single channel, got {chan}", stmt.location
            )
        if not chan.writable:
            raise FlickTypeError(
                "cannot send into a read-only channel", stmt.location
            )
        if not ty.compatible(chan.write, value_type):
            raise FlickTypeError(
                f"cannot send {value_type} into channel of {chan.write}",
                stmt.location,
            )

    # -- processes -------------------------------------------------------------

    def _check_process(self, decl: ast.ProcDecl) -> None:
        scope = _Scope()
        params: List[Tuple[str, ty.Type]] = []
        for param in decl.params:
            resolved = self._resolve(param.type, param.location)
            scope.bind(param.name, resolved)
            params.append((param.name, resolved))
        self._proc_params[decl.name] = tuple(params)
        self._check_body(decl.body, scope, in_proc=True)

    def _check_pipeline(self, stmt: ast.PipelineStmt, scope: _Scope) -> None:
        stages = stmt.stages
        if len(stages) < 2:
            raise FlickTypeError(
                "a pipeline needs a source and at least one more stage",
                stmt.location,
            )
        first = stages[0]
        if first.func is not None:
            raise FlickTypeError(
                "pipeline source must be a channel", stmt.location
            )
        source_type = ty.strip_ref(self._check_expr(first.expr, scope))
        if not isinstance(source_type, ty.ChannelEndType):
            # ``value => channel`` inside a process body parses as a
            # two-stage pipeline; re-interpret it as a send statement.
            if len(stages) == 2 and stages[1].func is None:
                self._check_send(
                    ast.SendStmt(first.expr, stages[1].expr, stmt.location),
                    scope,
                )
                return
            raise FlickTypeError(
                f"pipeline source must be a channel, got {source_type}",
                stmt.location,
            )
        if not source_type.readable:
            raise FlickTypeError(
                "pipeline source channel is write-only", stmt.location
            )
        message: Optional[ty.Type] = source_type.read
        for stage in stages[1:-1]:
            message = self._check_function_stage(stage, scope, message, stmt)
        last = stages[-1]
        if last.func is not None:
            result = self._check_function_stage(last, scope, message, stmt)
            if result is not None and not isinstance(result, ty.UnitType):
                raise FlickTypeError(
                    "final pipeline stage discards a value; route it to a "
                    "channel or use a function returning ()",
                    stmt.location,
                )
            return
        sink_type = ty.strip_ref(self._check_expr(last.expr, scope))
        if not isinstance(sink_type, ty.ChannelEndType):
            raise FlickTypeError(
                f"pipeline sink must be a channel, got {sink_type}", stmt.location
            )
        if not sink_type.writable:
            raise FlickTypeError("pipeline sink channel is read-only", stmt.location)
        if message is None:
            raise FlickTypeError(
                "pipeline has no value to send to its sink", stmt.location
            )
        if not ty.compatible(sink_type.write, message):
            raise FlickTypeError(
                f"pipeline sends {message} into channel of {sink_type.write}",
                stmt.location,
            )

    def _check_function_stage(
        self,
        stage: ast.PipelineStage,
        scope: _Scope,
        message: Optional[ty.Type],
        stmt: ast.PipelineStmt,
    ) -> Optional[ty.Type]:
        if message is None:
            raise FlickTypeError(
                "pipeline stage receives no message", stmt.location
            )
        fun_type = self._functions.get(stage.func)
        if fun_type is None:
            raise FlickTypeError(
                f"unknown pipeline function {stage.func!r}", stmt.location
            )
        bound = [self._check_expr(arg, scope) for arg in stage.args]
        expected = fun_type.params
        if len(bound) + 1 != len(expected):
            raise FlickTypeError(
                f"pipeline stage {stage.func!r} binds {len(bound)} argument(s) "
                f"but the function takes {len(expected)} (message is appended)",
                stmt.location,
            )
        for i, (exp, act) in enumerate(zip(expected[:-1], bound)):
            if not ty.compatible(exp, act):
                raise FlickTypeError(
                    f"pipeline stage {stage.func!r} argument {i}: "
                    f"expected {exp}, got {act}",
                    stmt.location,
                )
        if not ty.compatible(expected[-1], message):
            raise FlickTypeError(
                f"pipeline stage {stage.func!r} consumes {expected[-1]}, "
                f"but the pipeline carries {message}",
                stmt.location,
            )
        if not fun_type.returns:
            return None
        return fun_type.returns[0]

    # -- expressions --------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ty.Type:
        if isinstance(expr, ast.IntLit):
            return ty.INTEGER
        if isinstance(expr, ast.StrLit):
            return ty.STRING
        if isinstance(expr, ast.BoolLit):
            return ty.BOOLEAN
        if isinstance(expr, ast.NoneLit):
            return ty.UNIT
        if isinstance(expr, ast.Var):
            bound = scope.lookup(expr.name)
            if bound is not None:
                return bound
            if expr.name in VALUE_BUILTINS:
                return BUILTINS[expr.name].type_rule(())
            raise FlickTypeError(f"unknown variable {expr.name!r}", expr.location)
        if isinstance(expr, ast.FieldAccess):
            obj_type = ty.strip_ref(self._check_expr(expr.obj, scope))
            if isinstance(obj_type, ty.AnyType):
                return ty.ANY
            if not isinstance(obj_type, ty.RecordType):
                raise FlickTypeError(
                    f"cannot access field {expr.field!r} of {obj_type}",
                    expr.location,
                )
            ftype = obj_type.field_type(expr.field)
            if ftype is None:
                raise FlickTypeError(
                    f"record {obj_type.name!r} has no field {expr.field!r} "
                    "(anonymous '_' fields are not addressable)",
                    expr.location,
                )
            self._note_access(obj_type, expr.field)
            return ftype
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            operand = ty.strip_ref(self._check_expr(expr.operand, scope))
            if expr.op == "not":
                if not isinstance(operand, (ty.BoolType, ty.AnyType)):
                    raise FlickTypeError(
                        f"'not' expects a boolean, got {operand}", expr.location
                    )
                return ty.BOOLEAN
            if expr.op == "-":
                if not isinstance(operand, (ty.IntType, ty.AnyType)):
                    raise FlickTypeError(
                        f"unary '-' expects an integer, got {operand}",
                        expr.location,
                    )
                return ty.INTEGER
        if isinstance(expr, ast.FoldTExpr):
            return self._check_foldt(expr, scope)
        raise FlickTypeError(f"unsupported expression {expr!r}")

    def _check_index(self, expr: ast.Index, scope: _Scope) -> ty.Type:
        container = ty.strip_ref(self._check_expr(expr.obj, scope))
        index_type = ty.strip_ref(self._check_expr(expr.index, scope))
        if isinstance(container, ty.DictMapType):
            if not ty.compatible(container.key, index_type):
                raise FlickTypeError(
                    f"dict key type mismatch: {index_type} vs {container.key}",
                    expr.location,
                )
            return container.value
        if isinstance(container, ty.ListSeqType):
            if not isinstance(index_type, (ty.IntType, ty.AnyType)):
                raise FlickTypeError(
                    f"list index must be integer, got {index_type}", expr.location
                )
            return container.element
        if isinstance(container, ty.ChannelEndType) and container.is_array:
            if not isinstance(index_type, (ty.IntType, ty.AnyType)):
                raise FlickTypeError(
                    f"channel array index must be integer, got {index_type}",
                    expr.location,
                )
            return container.element()
        if isinstance(container, ty.AnyType):
            return ty.ANY
        raise FlickTypeError(f"cannot index into {container}", expr.location)

    def _check_call(self, expr: ast.Call, scope: _Scope) -> ty.Type:
        name = expr.func
        if name in HIGHER_ORDER:
            return self._check_higher_order(expr, scope)
        if name in BUILTINS:
            args = tuple(self._check_expr(a, scope) for a in expr.args)
            return BUILTINS[name].type_rule(args)
        if name in self._records:
            return self._check_constructor(expr, scope)
        fun_type = self._functions.get(name)
        if fun_type is None:
            raise FlickTypeError(f"unknown function {name!r}", expr.location)
        args = tuple(self._check_expr(a, scope) for a in expr.args)
        if len(args) != len(fun_type.params):
            raise FlickTypeError(
                f"{name!r} expects {len(fun_type.params)} argument(s), "
                f"got {len(args)}",
                expr.location,
            )
        for i, (exp, act) in enumerate(zip(fun_type.params, args)):
            if not ty.compatible(exp, act):
                raise FlickTypeError(
                    f"{name!r} argument {i}: expected {exp}, got {act}",
                    expr.location,
                )
        if not fun_type.returns:
            return ty.UNIT
        return fun_type.returns[0]

    def _check_constructor(self, expr: ast.Call, scope: _Scope) -> ty.Type:
        record = self._records[expr.func]
        fields = record.fields
        if len(expr.args) != len(fields):
            raise FlickTypeError(
                f"constructor {expr.func!r} expects {len(fields)} field "
                f"value(s), got {len(expr.args)}",
                expr.location,
            )
        for (fname, ftype), arg in zip(fields, expr.args):
            arg_type = self._check_expr(arg, scope)
            if not ty.compatible(ftype, arg_type):
                raise FlickTypeError(
                    f"constructor {expr.func!r} field {fname!r}: "
                    f"expected {ftype}, got {arg_type}",
                    expr.location,
                )
            self._note_access(record, fname)
        return record

    def _check_higher_order(self, expr: ast.Call, scope: _Scope) -> ty.Type:
        name = expr.func
        if not expr.args or not isinstance(expr.args[0], ast.Var):
            raise FlickTypeError(
                f"{name} expects a function name as its first argument",
                expr.location,
            )
        fn_name = expr.args[0].name
        fun_type = self._functions.get(fn_name)
        if fun_type is None:
            raise FlickTypeError(
                f"{name} refers to unknown function {fn_name!r}", expr.location
            )
        if name == "fold":
            if len(expr.args) != 3:
                raise FlickTypeError(
                    "fold expects (function, accumulator, list)", expr.location
                )
            acc_type = self._check_expr(expr.args[1], scope)
            seq_type = ty.strip_ref(self._check_expr(expr.args[2], scope))
            elem = self._require_list(seq_type, name, expr)
            self._require_signature(fun_type, (acc_type, elem), fn_name, expr)
            return fun_type.returns[0] if fun_type.returns else ty.UNIT
        if name == "map":
            if len(expr.args) != 2:
                raise FlickTypeError("map expects (function, list)", expr.location)
            seq_type = ty.strip_ref(self._check_expr(expr.args[1], scope))
            elem = self._require_list(seq_type, name, expr)
            self._require_signature(fun_type, (elem,), fn_name, expr)
            result = fun_type.returns[0] if fun_type.returns else ty.UNIT
            return ty.ListSeqType(result)
        # filter
        if len(expr.args) != 2:
            raise FlickTypeError("filter expects (function, list)", expr.location)
        seq_type = ty.strip_ref(self._check_expr(expr.args[1], scope))
        elem = self._require_list(seq_type, name, expr)
        self._require_signature(fun_type, (elem,), fn_name, expr)
        if not fun_type.returns or not isinstance(
            ty.strip_ref(fun_type.returns[0]), (ty.BoolType, ty.AnyType)
        ):
            raise FlickTypeError(
                f"filter predicate {fn_name!r} must return boolean", expr.location
            )
        return ty.ListSeqType(elem)

    @staticmethod
    def _require_list(seq_type: ty.Type, name: str, expr: ast.Call) -> ty.Type:
        if isinstance(seq_type, ty.ListSeqType):
            return seq_type.element
        if isinstance(seq_type, ty.AnyType):
            return ty.ANY
        raise FlickTypeError(
            f"{name} expects a list, got {seq_type}", expr.location
        )

    @staticmethod
    def _require_signature(
        fun_type: ty.FunType, expected, fn_name: str, expr: ast.Call
    ) -> None:
        if len(fun_type.params) != len(expected):
            raise FlickTypeError(
                f"{fn_name!r} has arity {len(fun_type.params)}, "
                f"expected {len(expected)}",
                expr.location,
            )
        for exp, act in zip(fun_type.params, expected):
            if not ty.compatible(exp, act):
                raise FlickTypeError(
                    f"{fn_name!r} parameter mismatch: {exp} vs {act}",
                    expr.location,
                )

    def _check_binop(self, expr: ast.BinOp, scope: _Scope) -> ty.Type:
        left = ty.strip_ref(self._check_expr(expr.left, scope))
        right = ty.strip_ref(self._check_expr(expr.right, scope))
        op = expr.op
        if op in ("and", "or"):
            for side in (left, right):
                if not isinstance(side, (ty.BoolType, ty.AnyType)):
                    raise FlickTypeError(
                        f"{op!r} expects booleans, got {side}", expr.location
                    )
            return ty.BOOLEAN
        if op in ("=", "<>"):
            # Equality permits a None test against any operand type (the
            # dict-miss idiom of Listing 1 line 28).
            if isinstance(left, ty.UnitType) or isinstance(right, ty.UnitType):
                return ty.BOOLEAN
            if not ty.compatible(left, right):
                raise FlickTypeError(
                    f"cannot compare {left} with {right}", expr.location
                )
            return ty.BOOLEAN
        if op in ("<", ">", "<=", ">="):
            ok = (
                isinstance(left, (ty.IntType, ty.AnyType))
                and isinstance(right, (ty.IntType, ty.AnyType))
            ) or (
                isinstance(left, (ty.StringType, ty.AnyType))
                and isinstance(right, (ty.StringType, ty.AnyType))
            )
            if not ok:
                raise FlickTypeError(
                    f"cannot order {left} and {right}", expr.location
                )
            return ty.BOOLEAN
        if op == "+":
            if isinstance(left, (ty.StringType,)) and isinstance(
                right, (ty.StringType,)
            ):
                return ty.STRING
            if isinstance(left, (ty.IntType, ty.AnyType)) and isinstance(
                right, (ty.IntType, ty.AnyType)
            ):
                return ty.INTEGER
            raise FlickTypeError(
                f"cannot add {left} and {right}", expr.location
            )
        if op in ("-", "*", "/", "mod"):
            for side in (left, right):
                if not isinstance(side, (ty.IntType, ty.AnyType)):
                    raise FlickTypeError(
                        f"{op!r} expects integers, got {side}", expr.location
                    )
            return ty.INTEGER
        raise FlickTypeError(f"unknown operator {op!r}", expr.location)

    def _check_foldt(self, expr: ast.FoldTExpr, scope: _Scope) -> ty.Type:
        source = ty.strip_ref(self._check_expr(expr.source, scope))
        if not (
            isinstance(source, ty.ChannelEndType)
            and source.is_array
            and source.readable
        ):
            raise FlickTypeError(
                f"foldt source must be a readable channel array, got {source}",
                expr.location,
            )
        elem_type = source.read
        order_scope = scope.child()
        order_scope.bind(expr.elem_var, elem_type)
        key_type = ty.strip_ref(self._check_expr(expr.order_expr, order_scope))
        if not isinstance(key_type, (ty.IntType, ty.StringType, ty.AnyType)):
            raise FlickTypeError(
                f"foldt ordering key must be integer or string, got {key_type}",
                expr.location,
            )
        body_scope = scope.child()
        body_scope.bind(expr.left_var, elem_type)
        body_scope.bind(expr.right_var, elem_type)
        body_scope.bind(expr.key_alias, key_type)
        tails = self._check_body(expr.body, body_scope, in_proc=False)
        for tail in tails:
            if tail is None or not ty.compatible(elem_type, tail):
                raise FlickTypeError(
                    f"foldt body must produce {elem_type}, got {tail}",
                    expr.location,
                )
        return elem_type


def check_program(program: ast.Program) -> CheckedProgram:
    """Type check ``program`` and return the resolved signatures."""
    return TypeChecker(program).check()
