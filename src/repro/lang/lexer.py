"""Indentation-aware lexer for the FLICK language.

The surface syntax follows the paper's listings: declarations introduced
by ``type`` / ``proc`` / ``fun``, blocks delimited by indentation (as in
Python), ``#`` comments, hexadecimal and decimal integer literals, and the
FLICK-specific operators ``=>`` (send / pipeline), ``:=`` (assignment) and
``->`` (function result).

Implicit line joining applies inside parentheses, brackets and braces, so
multi-line signatures such as::

    proc memcached:
        (cmd/cmd client,
         [cmd/cmd] backends)

lex the way a reader expects.
"""

from __future__ import annotations

from typing import List

from repro.core.errors import FlickSyntaxError, SourceLocation
from repro.lang.tokens import (
    DEDENT,
    EOF,
    INDENT,
    INT,
    KEYWORDS,
    NAME,
    NEWLINE,
    OPERATORS,
    STRING,
    Token,
)

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | set("0123456789")
_DIGITS = set("0123456789")
_HEX_DIGITS = set("0123456789abcdefABCDEF")


class Lexer:
    """Tokenises FLICK source text into a list of :class:`Token`."""

    def __init__(self, source: str, filename: str = "<flick>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1
        self._paren_depth = 0
        self._indent_stack = [0]
        self._tokens: List[Token] = []
        self._at_line_start = True

    # -- public API ------------------------------------------------------

    def tokenize(self) -> List[Token]:
        while self._pos < len(self._source):
            if self._at_line_start and self._paren_depth == 0:
                self._handle_indentation()
                if self._pos >= len(self._source):
                    break
            ch = self._peek()
            if ch == "\n":
                self._consume_newline()
            elif ch in " \t":
                self._advance()
            elif ch == "#":
                self._skip_comment()
            elif ch == '"' or ch == "'":
                self._lex_string(ch)
            elif ch in _DIGITS:
                self._lex_number()
            elif ch in _NAME_START:
                self._lex_name()
            else:
                self._lex_operator()
        self._finish()
        return self._tokens

    # -- character helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._source[idx] if idx < len(self._source) else ""

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _emit(self, kind: str, value=None, location=None) -> None:
        self._tokens.append(Token(kind, value, location or self._location()))

    # -- indentation -------------------------------------------------------

    def _handle_indentation(self) -> None:
        # Measure leading whitespace of the current line; blank lines and
        # comment-only lines produce no INDENT/DEDENT/NEWLINE tokens.
        while True:
            width = 0
            while self._pos < len(self._source) and self._peek() in " \t":
                width += 8 - (width % 8) if self._peek() == "\t" else 1
                self._advance()
            if self._peek() == "#":
                self._skip_comment()
            if self._peek() == "\n":
                self._advance()
                continue
            if self._pos >= len(self._source):
                return
            break
        self._at_line_start = False
        current = self._indent_stack[-1]
        if width > current:
            self._indent_stack.append(width)
            self._emit(INDENT)
        else:
            while width < self._indent_stack[-1]:
                self._indent_stack.pop()
                self._emit(DEDENT)
            if width != self._indent_stack[-1]:
                raise FlickSyntaxError(
                    "inconsistent indentation", self._location()
                )

    def _consume_newline(self) -> None:
        self._advance()
        if self._paren_depth == 0:
            if self._tokens and self._tokens[-1].kind not in (NEWLINE, INDENT):
                self._emit(NEWLINE)
            self._at_line_start = True

    def _skip_comment(self) -> None:
        while self._pos < len(self._source) and self._peek() != "\n":
            self._advance()

    def _finish(self) -> None:
        if self._tokens and self._tokens[-1].kind not in (NEWLINE,):
            self._emit(NEWLINE)
        while len(self._indent_stack) > 1:
            self._indent_stack.pop()
            self._emit(DEDENT)
        self._emit(EOF)

    # -- token classes -------------------------------------------------------

    def _lex_string(self, quote: str) -> None:
        loc = self._location()
        self._advance()
        chars: List[str] = []
        while True:
            if self._pos >= len(self._source) or self._peek() == "\n":
                raise FlickSyntaxError("unterminated string literal", loc)
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\\":
                if self._pos >= len(self._source):
                    raise FlickSyntaxError("unterminated string literal", loc)
                escape = self._advance()
                mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", quote: quote, "0": "\0"}
                if escape not in mapping:
                    raise FlickSyntaxError(
                        f"unknown escape sequence '\\{escape}'", loc
                    )
                chars.append(mapping[escape])
            else:
                chars.append(ch)
        self._emit(STRING, "".join(chars), loc)

    def _lex_number(self) -> None:
        loc = self._location()
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance()
            self._advance()
            digits: List[str] = []
            while self._peek() in _HEX_DIGITS:
                digits.append(self._advance())
            if not digits:
                raise FlickSyntaxError("malformed hex literal", loc)
            self._emit(INT, int("".join(digits), 16), loc)
            return
        digits = []
        while self._peek() in _DIGITS:
            digits.append(self._advance())
        self._emit(INT, int("".join(digits)), loc)

    def _lex_name(self) -> None:
        loc = self._location()
        chars: List[str] = []
        while self._peek() in _NAME_CONT:
            chars.append(self._advance())
        word = "".join(chars)
        if word == "_":
            self._emit("_", None, loc)
        elif word in KEYWORDS:
            self._emit(word, None, loc)
        else:
            self._emit(NAME, word, loc)

    def _lex_operator(self) -> None:
        loc = self._location()
        for op in OPERATORS:
            if self._source.startswith(op, self._pos):
                for _ in op:
                    self._advance()
                if op in "([{":
                    self._paren_depth += 1
                elif op in ")]}":
                    self._paren_depth = max(0, self._paren_depth - 1)
                self._emit(op, None, loc)
                return
        raise FlickSyntaxError(
            f"unexpected character {self._peek()!r}", loc
        )


def tokenize(source: str, filename: str = "<flick>") -> List[Token]:
    """Convenience wrapper: tokenise ``source`` in one call."""
    return Lexer(source, filename).tokenize()
