"""Compiled execution tier: FLICK bodies lowered to generated Python.

The interpreter (``repro.lang.interpreter``) is the semantic **oracle**:
it defines both the values FLICK code produces and the abstract operation
counts the runtime converts into virtual CPU time.  This module is the
fast mechanism underneath it — the stand-in for the paper's generated
C++ (section 5).  :class:`CompiledExec` lowers every type-checked
function body, foldt combine step and constant initialiser to plain
Python source, ``exec``'s it once per program, and exposes handler
objects that are drop-in replacements for
:class:`~repro.lang.compiler.RuleHandler` /
:class:`~repro.lang.compiler.FoldTHandler`.

Op accounting must stay **bit-identical** to the interpreter (costs are
modeled, so execution speed must not change any simulated result).  The
trick: for every expression the op count decomposes into a *static* part
known at compile time (one op per AST node, same as ``Interpreter._eval``
/ ``_exec_stmt``) and a *dynamic* part (callee bodies, ``fold``/``map``/
``filter`` charging ``len(seq)``, short-circuited right operands).
Static ops are batched into a single ``_ops[0] += N`` per straight-line
block; dynamic contributors add to the same shared cell themselves:

* generated functions charge their own body's static ops, so a ``Call``
  site only charges its node + argument ops;
* ``_ho_fold``/``_ho_map``/``_ho_filter`` add ``len(seq)`` exactly like
  ``Interpreter._eval_higher_order``;
* the right operand of ``and``/``or`` is wrapped in ``_sc(value, N)``,
  which charges the operand's static ops only when Python actually
  evaluates it.

Evaluation *order* is preserved by construction: every FLICK expression
lowers to a single Python expression whose left-to-right evaluation
matches the interpreter's recursive descent, and multi-operand
statements route through helpers whose argument order mirrors the
interpreter (``_idx_set(value, container, key)`` etc.).

The batching means the cell is only guaranteed to equal the
interpreter's count at statement-block granularity — i.e. for every run
that completes (or unwinds past a whole block).  That is the granularity
the runtime observes: handlers read the cell once per message.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import FlickError, RuntimeFlickError
from repro.lang import ast
from repro.lang.builtins import BUILTINS, HIGHER_ORDER, VALUE_BUILTINS
from repro.lang.typecheck import CheckedProgram
from repro.lang.values import Record

#: Module-ish filename stamped on generated code objects (tracebacks).
_GEN_FILE = "<flick-codegen>"


# ---------------------------------------------------------------------------
# Runtime helpers injected into the generated namespace
# ---------------------------------------------------------------------------


def _make_helpers(ops: List[int]) -> Dict[str, Callable]:
    """Build the helper functions generated code calls.

    Each helper closes over ``ops``, the shared one-element op cell, and
    replicates the corresponding ``Interpreter`` code path (including
    error messages) exactly.
    """

    def _truthy(value) -> bool:
        if isinstance(value, bool):
            return value
        if value is None:
            return False
        raise RuntimeFlickError(
            f"condition evaluated to non-boolean {value!r}"
        )

    def _sc(value, static_ops: int) -> bool:
        # Short-circuit right operand: charge its static ops only when
        # Python evaluated it (mirrors _eval_binop's lazy right side).
        ops[0] += static_ops
        return _truthy(value)

    def _unbound(name: str):
        raise RuntimeFlickError(f"unbound variable {name!r}")

    def _unbound_assign(value, name: str):
        raise RuntimeFlickError(f"assignment to unbound variable {name!r}")

    def _unknown_fn(name: str, *args):
        raise RuntimeFlickError(f"unknown function {name!r}")

    def _index(container, key):
        if isinstance(container, dict):
            # Dict miss yields None, matching Listing 1's cache test.
            return container.get(key)
        if isinstance(container, (list, tuple)):
            return container[key]
        indexed = getattr(container, "__getitem__", None)
        if indexed is not None:
            return indexed(key)
        raise RuntimeFlickError(
            f"cannot index into {type(container).__name__}"
        )

    def _idx_set(value, container, key) -> None:
        if isinstance(container, dict):
            container[key] = value
            return
        raise RuntimeFlickError(
            f"cannot index-assign into {type(container).__name__}"
        )

    def _fset(value, obj, name: str) -> None:
        if isinstance(obj, Record):
            obj.set(name, value)
            return
        raise RuntimeFlickError(
            f"cannot assign field of {type(obj).__name__}"
        )

    def _send(value, channel) -> None:
        send = getattr(channel, "send", None)
        if send is None:
            raise RuntimeFlickError(
                f"value {channel!r} is not a writable channel"
            )
        send(value)

    def _div(left, right):
        if right == 0:
            raise RuntimeFlickError("division by zero")
        return left // right

    def _mod(left, right):
        if right == 0:
            raise RuntimeFlickError("modulo by zero")
        return left % right

    def _ho_fold(fn, acc, seq):
        ops[0] += len(seq)
        for item in seq:
            acc = fn(acc, item)
        return acc

    def _ho_map(fn, seq):
        ops[0] += len(seq)
        return [fn(item) for item in seq]

    def _ho_filter(fn, seq):
        ops[0] += len(seq)
        return [item for item in seq if _truthy(fn(item))]

    return {
        "_truthy": _truthy,
        "_sc": _sc,
        "_unbound": _unbound,
        "_unbound_assign": _unbound_assign,
        "_unknown_fn": _unknown_fn,
        "_index": _index,
        "_idx_set": _idx_set,
        "_fset": _fset,
        "_send": _send,
        "_div": _div,
        "_mod": _mod,
        "_ho_fold": _ho_fold,
        "_ho_map": _ho_map,
        "_ho_filter": _ho_filter,
    }


def _record_builder(type_name: str) -> Callable:
    """Fast record builder: takes the ready field dict (the emitter
    inlines it as a literal, keys in declaration order, so the result is
    exactly ``Interpreter.make_record``'s).  Builds the instance with
    ``__new__`` + slot stores instead of ``Record.__init__``, which
    would copy the dict a second time — construction is on the
    per-request hot path."""
    new = Record.__new__
    store = object.__setattr__

    def build(fields: Dict[str, object]) -> Record:
        record = new(Record)
        store(record, "_type_name", type_name)
        store(record, "_fields", fields)
        store(record, "raw", None)
        store(record, "dirty", False)
        store(record, "spans", None)
        return record

    return build


def _record_ctor(type_name: str, names: Tuple[str, ...], build: Callable) -> Callable:
    """Positional constructor matching ``Interpreter.make_record``."""
    arity = len(names)

    def ctor(*values) -> Record:
        if len(values) != arity:
            raise RuntimeFlickError(
                f"constructor {type_name!r} expects {arity} values"
            )
        return build(dict(zip(names, values)))

    return ctor


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------


class _Scope:
    """Compile-time mirror of the interpreter's chained ``_Env``.

    Maps FLICK names to generated Python local names.  If-branches get a
    child scope so branch-local ``let`` bindings (which the typechecker
    allows to shadow) compile to fresh Python names and cannot leak.
    """

    __slots__ = ("_names", "_parent")

    def __init__(self, parent: Optional["_Scope"] = None):
        self._names: Dict[str, str] = {}
        self._parent = parent

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope._names:
                return scope._names[name]
            scope = scope._parent
        return None

    def bind(self, name: str, pyname: str) -> None:
        self._names[name] = pyname

    def child(self) -> "_Scope":
        return _Scope(self)


_SIMPLE_BINOPS = {
    "=": "==",
    "<>": "!=",
    "<": "<",
    ">": ">",
    "<=": "<=",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
}


class _Emitter:
    """Lowers checked AST nodes to Python source fragments.

    Every ``expr`` method returns ``(code, static_ops)`` where ``code``
    is a self-contained Python expression and ``static_ops`` the op
    count the *caller* must charge for evaluating it (dynamic parts
    self-register through the shared cell; see module docstring).
    """

    def __init__(self, checked: CheckedProgram):
        self._records = checked.records
        self._fun_names = frozenset(f.name for f in checked.program.funs)
        self._counter = 0

    def fresh(self, name: str) -> str:
        self._counter += 1
        return f"v_{name}_{self._counter}"

    # -- expressions -----------------------------------------------------

    def expr(self, e: ast.Expr, scope: _Scope) -> Tuple[str, int]:
        if isinstance(e, ast.IntLit):
            return repr(e.value), 1
        if isinstance(e, ast.StrLit):
            return repr(e.value), 1
        if isinstance(e, ast.BoolLit):
            return ("True" if e.value else "False"), 1
        if isinstance(e, ast.NoneLit):
            return "None", 1
        if isinstance(e, ast.Var):
            bound = scope.lookup(e.name)
            if bound is not None:
                return bound, 1
            if e.name in VALUE_BUILTINS:
                # Env-miss fallback to the value builtin (fresh value
                # per reference), as in Interpreter._eval.
                return f"_b_{e.name}()", 1
            return f"_unbound({e.name!r})", 1
        if isinstance(e, ast.FieldAccess):
            obj, n = self.expr(e.obj, scope)
            # Direct slot read: safe for type-checked programs (the
            # typechecker proves obj is a record with this field) and
            # bypasses Record.get's try/except on the hot path.
            return f"({obj})._fields[{e.field!r}]", n + 1
        if isinstance(e, ast.Index):
            obj, no = self.expr(e.obj, scope)
            idx, ni = self.expr(e.index, scope)
            return f"_index({obj}, {idx})", no + ni + 1
        if isinstance(e, ast.Call):
            return self._call(e, scope)
        if isinstance(e, ast.BinOp):
            return self._binop(e, scope)
        if isinstance(e, ast.UnaryOp):
            operand, n = self.expr(e.operand, scope)
            if e.op == "not":
                return f"(not _truthy({operand}))", n + 1
            return f"(-{operand})", n + 1
        if isinstance(e, ast.FoldTExpr):
            raise RuntimeFlickError(
                "foldt must be compiled to a task tree; use "
                "merge_sorted_streams for reference semantics"
            )
        raise RuntimeFlickError(f"cannot compile expression {e!r}")

    def _call(self, e: ast.Call, scope: _Scope) -> Tuple[str, int]:
        name = e.func
        if name in HIGHER_ORDER:
            # args[0] is the function-name Var; the interpreter never
            # evaluates it, so it contributes zero ops.
            fn_ref = f"_fn_{e.args[0].name}"
            if name == "fold":
                acc, na = self.expr(e.args[1], scope)
                seq, ns = self.expr(e.args[2], scope)
                return f"_ho_fold({fn_ref}, {acc}, {seq})", na + ns + 1
            seq, ns = self.expr(e.args[1], scope)
            return f"_ho_{name}({fn_ref}, {seq})", ns + 1
        parts: List[str] = []
        total = 1
        for arg in e.args:
            code, n = self.expr(arg, scope)
            parts.append(code)
            total += n
        joined = ", ".join(parts)
        if name in BUILTINS:
            return f"_b_{name}({joined})", total
        if name in self._records:
            names = self._records[name].field_names()
            if len(names) == len(parts):
                fields = ", ".join(
                    f"{fname!r}: {code}"
                    for fname, code in zip(names, parts)
                )
                return f"_rec_{name}({{{fields}}})", total
            # Arity mismatch cannot pass the typechecker; keep the
            # checked positional constructor for defence in depth.
            return f"_rec_chk_{name}({joined})", total
        if name in self._fun_names:
            return f"_fn_{name}({joined})", total
        # Arguments still evaluate (left-to-right) before the failure,
        # like Interpreter._eval_call.
        tail = f", {joined}" if parts else ""
        return f"_unknown_fn({name!r}{tail})", total

    def _binop(self, e: ast.BinOp, scope: _Scope) -> Tuple[str, int]:
        left, nl = self.expr(e.left, scope)
        right, nr = self.expr(e.right, scope)
        op = e.op
        if op in ("and", "or"):
            return f"(_truthy({left}) {op} _sc({right}, {nr}))", nl + 1
        py = _SIMPLE_BINOPS.get(op)
        if py is not None:
            return f"({left} {py} {right})", nl + nr + 1
        if op == "/":
            return f"_div({left}, {right})", nl + nr + 1
        if op == "mod":
            return f"_mod({left}, {right})", nl + nr + 1
        raise RuntimeFlickError(f"unknown operator {op!r}")

    # -- statements ------------------------------------------------------

    def block(
        self, body: Sequence[ast.Stmt], scope: _Scope, tail: bool
    ) -> List[str]:
        """Compile a statement list; when ``tail``, every path returns
        the body's result (the last statement's value, like
        ``_exec_body``)."""
        if not body:
            return ["return None"] if tail else ["pass"]
        lines: List[str] = []
        static = 0
        last = len(body) - 1
        for i, stmt in enumerate(body):
            stmt_lines, n = self.stmt(stmt, scope, tail and i == last)
            lines.extend(stmt_lines)
            static += n
        if static:
            lines.insert(0, f"_ops[0] += {static}")
        return lines

    def stmt(
        self, stmt: ast.Stmt, scope: _Scope, tail: bool
    ) -> Tuple[List[str], int]:
        if isinstance(stmt, ast.LetStmt):
            return self._let(stmt.name, stmt.value, scope, tail)
        if isinstance(stmt, ast.AssignStmt):
            return self._assign(stmt, scope, tail)
        if isinstance(stmt, ast.SendStmt):
            value, nv = self.expr(stmt.value, scope)
            channel, nc = self.expr(stmt.channel, scope)
            lines = [f"_send({value}, {channel})"]
            if tail:
                lines.append("return None")
            return lines, nv + nc + 1
        if isinstance(stmt, ast.IfStmt):
            cond, ncond = self.expr(stmt.condition, scope)
            then_lines = self.block(stmt.then_body, scope.child(), tail)
            lines = [f"if _truthy({cond}):"]
            lines.extend("    " + line for line in then_lines)
            if stmt.else_body or tail:
                else_lines = self.block(stmt.else_body, scope.child(), tail)
                lines.append("else:")
                lines.extend("    " + line for line in else_lines)
            return lines, ncond + 1
        if isinstance(stmt, ast.ExprStmt):
            code, n = self.expr(stmt.expr, scope)
            return [f"return {code}" if tail else code], n + 1
        if isinstance(stmt, ast.GlobalDecl):
            # Only reachable when executing a declaration directly (the
            # runtime materialises globals beforehand); binds like let.
            return self._let(stmt.name, stmt.init, scope, tail)
        raise RuntimeFlickError(f"cannot execute statement {stmt!r}")

    def _let(
        self, name: str, value: ast.Expr, scope: _Scope, tail: bool
    ) -> Tuple[List[str], int]:
        # Compile the value *before* binding: `let x = x + 1` sees the
        # outer x, exactly like the interpreter's eval-then-bind.
        code, n = self.expr(value, scope)
        pyname = self.fresh(name)
        scope.bind(name, pyname)
        lines = [f"{pyname} = {code}"]
        if tail:
            lines.append("return None")
        return lines, n + 1

    def _assign(
        self, stmt: ast.AssignStmt, scope: _Scope, tail: bool
    ) -> Tuple[List[str], int]:
        value, nv = self.expr(stmt.value, scope)
        target = stmt.target
        if isinstance(target, ast.Var):
            bound = scope.lookup(target.name)
            if bound is not None:
                lines = [f"{bound} = {value}"]
            else:
                lines = [f"_unbound_assign({value}, {target.name!r})"]
            static = nv + 1
        elif isinstance(target, ast.Index):
            obj, no = self.expr(target.obj, scope)
            key, nk = self.expr(target.index, scope)
            # Helper argument order = interpreter evaluation order:
            # value, then container, then key.
            lines = [f"_idx_set({value}, {obj}, {key})"]
            static = nv + no + nk + 1
        elif isinstance(target, ast.FieldAccess):
            obj, no = self.expr(target.obj, scope)
            lines = [f"_fset({value}, {obj}, {target.field!r})"]
            static = nv + no + 1
        else:
            raise RuntimeFlickError("invalid assignment target")
        if tail:
            lines.append("return None")
        return lines, static

    # -- declarations ----------------------------------------------------

    def function_source(self, decl: ast.FunDecl) -> str:
        scope = _Scope()
        params: List[str] = []
        for param in decl.params:
            pyname = self.fresh(param.name)
            scope.bind(param.name, pyname)
            params.append(pyname)
        body = self.block(decl.body, scope, tail=True)
        lines = [f"def _fn_{decl.name}({', '.join(params)}):"]
        lines.extend("    " + line for line in body)
        return "\n".join(lines)

    def const_source(self, name: str, expr: ast.Expr) -> str:
        code, n = self.expr(expr, _Scope())
        return f"def {name}():\n    _ops[0] += {n}\n    return {code}"

    def foldt_source(
        self, expr: ast.FoldTExpr, index: int
    ) -> Tuple[str, str, str]:
        """Emit ``(key_fn_name, body_fn_name, source)`` for a foldt."""
        key_scope = _Scope()
        elem = self.fresh(expr.elem_var)
        key_scope.bind(expr.elem_var, elem)
        order_code, order_ops = self.expr(expr.order_expr, key_scope)
        key_name = f"_foldt_key_{index}"
        key_lines = [
            f"def {key_name}({elem}):",
            f"    _ops[0] += {order_ops}",
            f"    return {order_code}",
        ]
        body_scope = _Scope()
        left = self.fresh(expr.left_var)
        body_scope.bind(expr.left_var, left)
        right = self.fresh(expr.right_var)
        body_scope.bind(expr.right_var, right)
        alias = self.fresh(expr.key_alias)
        body_scope.bind(expr.key_alias, alias)
        body_name = f"_foldt_body_{index}"
        body_lines = [f"def {body_name}({left}, {right}, {alias}):"]
        body_lines.extend(
            "    " + line for line in self.block(expr.body, body_scope, True)
        )
        source = "\n".join(key_lines) + "\n\n" + "\n".join(body_lines)
        return key_name, body_name, source


# ---------------------------------------------------------------------------
# Executable handlers (drop-in for RuleHandler / FoldTHandler)
# ---------------------------------------------------------------------------


def _resolve_bound(expr: ast.Expr, context: Dict[str, object]):
    """Pre-resolve a stage bound argument (RuleHandler._eval_bound).

    Bound values are stable for the lifetime of a graph binding (channel
    proxies and global stores are mutated in place, never rebound), so
    resolving once at handler construction is equivalent to the
    interpreter's per-message resolution — and charges the same zero ops.
    """
    if isinstance(expr, ast.Var):
        if expr.name in context:
            return context[expr.name]
        raise FlickError(
            f"pipeline stage references unbound name {expr.name!r}"
        )
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.StrLit):
        return expr.value
    raise FlickError(
        "pipeline stage bound arguments must be channel parameters, "
        "globals or literals"
    )


class CompiledRuleHandler:
    """Compiled-tier counterpart of :class:`~repro.lang.compiler.\
RuleHandler`: same call contract (message in, op count out), stages
    pre-lowered to generated functions."""

    __slots__ = ("_rule", "_stages", "_fn", "_bound", "_sink_channel", "_cell")

    def __init__(self, rule, executor: "CompiledExec", context: Dict[str, object]):
        self._rule = rule
        stages = []
        for stage in rule.stages:
            fn = executor.function(stage.func)
            bound = tuple(
                _resolve_bound(arg, context) for arg in stage.bound_args
            )
            stages.append((fn, bound))
        self._stages = tuple(stages)
        # Single-stage rules are the per-request common case; pre-split
        # them so __call__ skips the pipeline loop entirely (bound == None
        # additionally skips the varargs unpack).
        if len(stages) == 1:
            fn, bound = stages[0]
            self._fn, self._bound = fn, (bound or None)
        else:
            self._fn, self._bound = None, ()
        self._sink_channel = (
            context[rule.sink] if rule.sink is not None else None
        )
        self._cell = executor.ops_cell

    @property
    def source(self) -> str:
        return self._rule.source

    @property
    def sink(self) -> Optional[str]:
        return self._rule.sink

    def __call__(self, message) -> int:
        cell = self._cell
        cell[0] = 0
        fn = self._fn
        if fn is not None:
            bound = self._bound
            value = fn(message) if bound is None else fn(*bound, message)
        else:
            value = message
            for stage_fn, bound in self._stages:
                value = stage_fn(*bound, value)
        channel = self._sink_channel
        if channel is not None:
            channel.send(value)
        return cell[0] + 1


class CompiledFoldTHandler:
    """Compiled-tier counterpart of :class:`~repro.lang.compiler.\
FoldTHandler` for foldt merge-tree nodes."""

    __slots__ = ("_key_fn", "_body_fn", "_cell")

    def __init__(self, plan, executor: "CompiledExec"):
        self._key_fn, self._body_fn = executor.foldt_fns(plan.expr)
        self._cell = executor.ops_cell

    def key(self, element: Record):
        return self._key_fn(element)

    def combine(self, left: Record, right: Record) -> Record:
        # Argument order computes the key alias before the body runs,
        # mirroring Interpreter.combine's bind-then-execute.
        result = self._body_fn(left, right, self._key_fn(left))
        if not isinstance(result, Record):
            raise RuntimeFlickError(
                f"foldt body must produce a record, got {result!r}"
            )
        return result

    def combine_with_ops(self, left: Record, right: Record):
        cell = self._cell
        cell[0] = 0
        merged = self.combine(left, right)
        return merged, cell[0] + 1


# ---------------------------------------------------------------------------
# The compiled executor
# ---------------------------------------------------------------------------


class CompiledExec:
    """Generated-code execution tier for one checked program.

    Mirrors the :class:`~repro.lang.interpreter.Interpreter` surface the
    runtime uses (``reset_ops``, ``call_function``, ``eval_const``,
    ``make_record``) so the two tiers are interchangeable; the
    differential harness in ``tests/test_exec_tier.py`` holds them to
    identical values *and* identical op counts.
    """

    def __init__(self, checked: CheckedProgram):
        self._checked = checked
        self.ops_cell: List[int] = [0]
        self._emitter = _Emitter(checked)
        namespace: Dict[str, object] = {
            "__builtins__": {},
            "_ops": self.ops_cell,
        }
        namespace.update(_make_helpers(self.ops_cell))
        for name, builtin in BUILTINS.items():
            namespace[f"_b_{name}"] = builtin.impl
        self._ctors: Dict[str, Callable] = {}
        for rec_name, rec_type in checked.records.items():
            build = _record_builder(rec_name)
            ctor = _record_ctor(rec_name, rec_type.field_names(), build)
            self._ctors[rec_name] = ctor
            namespace[f"_rec_{rec_name}"] = build
            namespace[f"_rec_chk_{rec_name}"] = ctor
        funs = checked.program.funs
        chunks = [self._emitter.function_source(f) for f in funs]
        self.source = "\n\n".join(chunks) + ("\n" if chunks else "")
        exec(compile(self.source, _GEN_FILE, "exec"), namespace)
        self._namespace = namespace
        self._funs: Dict[str, Callable] = {
            f.name: namespace[f"_fn_{f.name}"] for f in funs
        }
        self._arities: Dict[str, int] = {
            f.name: len(f.params) for f in funs
        }
        # Lazy caches keyed by id(); the AST node is pinned alongside the
        # compiled function so the id cannot be reused while cached.
        self._consts: Dict[int, Tuple[ast.Expr, Callable]] = {}
        self._foldts: Dict[int, Tuple[ast.FoldTExpr, Callable, Callable]] = {}

    # -- interpreter-parity surface --------------------------------------

    def reset_ops(self) -> int:
        """Return the operation count accumulated since the last reset."""
        cell = self.ops_cell
        count = cell[0]
        cell[0] = 0
        return count

    @property
    def ops(self) -> int:
        return self.ops_cell[0]

    def function(self, name: str) -> Callable:
        """The generated function object for user function ``name``."""
        fn = self._funs.get(name)
        if fn is None:
            raise RuntimeFlickError(f"unknown function {name!r}")
        return fn

    def call_function(self, name: str, args: Sequence[object]):
        """Invoke user function ``name`` with evaluated ``args``."""
        fn = self._funs.get(name)
        if fn is None:
            raise RuntimeFlickError(f"unknown function {name!r}")
        arity = self._arities[name]
        if len(args) != arity:
            raise RuntimeFlickError(
                f"{name!r} expects {arity} argument(s), got {len(args)}"
            )
        return fn(*args)

    def eval_const(self, expr: ast.Expr):
        """Evaluate a closed expression (e.g. a global initialiser)."""
        entry = self._consts.get(id(expr))
        if entry is None:
            name = f"_const_{len(self._consts)}"
            source = self._emitter.const_source(name, expr)
            exec(compile(source, _GEN_FILE, "exec"), self._namespace)
            entry = (expr, self._namespace[name])
            self._consts[id(expr)] = entry
        return entry[1]()

    def make_record(self, type_name: str, values: Sequence[object]) -> Record:
        return self._ctors[type_name](*values)

    # -- handler construction --------------------------------------------

    def foldt_fns(self, expr: ast.FoldTExpr) -> Tuple[Callable, Callable]:
        """The generated ``(order_key, combine_body)`` pair for a foldt."""
        entry = self._foldts.get(id(expr))
        if entry is None:
            key_name, body_name, source = self._emitter.foldt_source(
                expr, len(self._foldts)
            )
            exec(compile(source, _GEN_FILE, "exec"), self._namespace)
            entry = (
                expr,
                self._namespace[key_name],
                self._namespace[body_name],
            )
            self._foldts[id(expr)] = entry
        return entry[1], entry[2]

    def rule_handler(
        self, rule, context: Dict[str, object]
    ) -> CompiledRuleHandler:
        return CompiledRuleHandler(rule, self, context)

    def foldt_handler(self, plan) -> CompiledFoldTHandler:
        return CompiledFoldTHandler(plan, self)
