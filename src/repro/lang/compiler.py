"""Compiler from FLICK programs to task-graph specifications.

The paper's compiler translates FLICK to C++ task graphs (section 5).
Here compilation produces a :class:`CompiledProgram` holding, for every
process, a :class:`ProcSpec`:

* the process's **endpoint signature** (named channel parameters with
  direction, element type and arity),
* **routing rules** — one per pipeline statement, each with its source
  endpoint, function stages (with bound-argument evaluators) and optional
  sink endpoint,
* an optional **foldt plan** describing the binary combine-tree the
  runtime instantiates for parallel aggregation (Figure 3c), and
* **global state** initialisers (the long-term key/value store of §4.3).

The runtime (``repro.runtime.graph``) turns a ``ProcSpec`` plus a set of
live connections into an executable task graph.  Compute-task handlers
execute the rule stages through :class:`repro.lang.interpreter.Interpreter`
— the stand-in for the paper's generated C++ — and report per-message
operation counts for virtual-time charging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.core.errors import FlickError, FlickTypeError
from repro.lang import ast
from repro.lang import types as ty
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse
from repro.lang.termination import TerminationReport, check_termination
from repro.lang.typecheck import CheckedProgram, check_program
from repro.lang.values import Record

if TYPE_CHECKING:
    from repro.lang.codegen import (
        CompiledExec,
        CompiledFoldTHandler,
        CompiledRuleHandler,
    )

#: Execution tiers for handler bodies: the AST-walking interpreter (the
#: semantic oracle) and the generated-Python compiled tier that must
#: match it bit-for-bit on values and op counts.
EXEC_TIERS: Tuple[str, ...] = ("interp", "compiled")


@dataclass(frozen=True)
class EndpointSpec:
    """One channel parameter of a process signature."""

    name: str
    readable: bool
    writable: bool
    is_array: bool
    read_type: Optional[str]  # record/primitive type name, if readable
    write_type: Optional[str]

    @property
    def bidirectional(self) -> bool:
        return self.readable and self.writable


@dataclass(frozen=True)
class StageSpec:
    """A function stage of a pipeline rule with its bound arguments."""

    func: str
    bound_args: Tuple[ast.Expr, ...]


@dataclass(frozen=True)
class RuleSpec:
    """A routing rule: ``source => stage* => sink?``."""

    source: str
    stages: Tuple[StageSpec, ...]
    sink: Optional[str]


@dataclass(frozen=True)
class FoldTPlan:
    """Plan for a foldt combine tree over a channel-array endpoint."""

    source: str
    sink: str
    expr: ast.FoldTExpr


@dataclass
class ProcSpec:
    """Everything the runtime needs to instantiate one process."""

    name: str
    endpoints: Tuple[EndpointSpec, ...]
    rules: Tuple[RuleSpec, ...]
    globals: Tuple[Tuple[str, ast.Expr], ...]
    foldt: Optional[FoldTPlan] = None

    def endpoint(self, name: str) -> EndpointSpec:
        for ep in self.endpoints:
            if ep.name == name:
                return ep
        raise KeyError(name)

    def client_endpoints(self) -> Tuple[EndpointSpec, ...]:
        """Endpoints that face incoming connections (non-array first)."""
        return tuple(ep for ep in self.endpoints if not ep.is_array)

    def array_endpoints(self) -> Tuple[EndpointSpec, ...]:
        return tuple(ep for ep in self.endpoints if ep.is_array)


@dataclass
class CompiledProgram:
    """A fully checked and lowered FLICK program.

    ``interpreter`` is lazily initialised: callers normally pass nothing
    and ``__post_init__`` materialises the oracle interpreter; the
    ``Optional`` annotation makes that explicit (the field is only
    ``None`` between field assignment and ``__post_init__``).  The
    compiled execution tier is built even more lazily — the first
    ``executor("compiled")`` call triggers code generation.
    """

    checked: CheckedProgram
    termination: TerminationReport
    procs: Dict[str, ProcSpec]
    interpreter: Optional[Interpreter] = field(repr=False, default=None)

    def __post_init__(self):
        if self.interpreter is None:
            self.interpreter = Interpreter(self.checked)
        # Not a dataclass field: purely a cache, invisible to repr/eq.
        self._codegen: Optional["CompiledExec"] = None

    def executor(self, tier: str = "interp") -> Union[Interpreter, "CompiledExec"]:
        """The execution backend for ``tier`` (see :data:`EXEC_TIERS`)."""
        if tier == "interp":
            return self.interpreter
        if tier == "compiled":
            if self._codegen is None:
                # Imported lazily: codegen is only needed when the
                # compiled tier is actually selected.
                from repro.lang.codegen import CompiledExec

                self._codegen = CompiledExec(self.checked)
            return self._codegen
        raise FlickError(
            f"unknown exec tier {tier!r}; expected one of {EXEC_TIERS}"
        )

    def proc(self, name: str) -> ProcSpec:
        try:
            return self.procs[name]
        except KeyError:
            raise FlickError(f"program has no process {name!r}") from None

    def accessed_fields(self, record_name: str) -> frozenset:
        return self.checked.accessed_fields.get(record_name, frozenset())

    def record_names(self) -> Tuple[str, ...]:
        return tuple(self.checked.records)


class Compiler:
    """Lowers a checked program to :class:`CompiledProgram`."""

    def __init__(self, checked: CheckedProgram, termination: TerminationReport):
        self._checked = checked
        self._termination = termination

    def compile(self) -> CompiledProgram:
        procs: Dict[str, ProcSpec] = {}
        for proc in self._checked.program.procs:
            procs[proc.name] = self._compile_proc(proc)
        return CompiledProgram(self._checked, self._termination, procs)

    # -- processes ------------------------------------------------------------

    def _compile_proc(self, proc: ast.ProcDecl) -> ProcSpec:
        endpoints = tuple(
            self._endpoint(name, t)
            for name, t in self._checked.proc_params[proc.name]
            if isinstance(ty.strip_ref(t), ty.ChannelEndType)
        )
        rules: List[RuleSpec] = []
        globals_: List[Tuple[str, ast.Expr]] = []
        foldt: Optional[FoldTPlan] = None
        for stmt in proc.body:
            if isinstance(stmt, ast.GlobalDecl):
                globals_.append((stmt.name, stmt.init))
            elif isinstance(stmt, ast.PipelineStmt):
                rules.append(self._compile_rule(proc.name, stmt))
            elif isinstance(stmt, ast.IfStmt):
                plan = self._extract_foldt(proc.name, stmt)
                if plan is not None:
                    if foldt is not None:
                        raise FlickTypeError(
                            f"process {proc.name!r} has multiple foldt "
                            "expressions; one combine tree per process",
                            stmt.location,
                        )
                    foldt = plan
                else:
                    raise FlickTypeError(
                        f"process {proc.name!r}: top-level if statements "
                        "must guard a foldt aggregation",
                        stmt.location,
                    )
            elif isinstance(stmt, ast.LetStmt) and isinstance(
                stmt.value, ast.FoldTExpr
            ):
                raise FlickTypeError(
                    "foldt must be guarded by all_ready(...) and routed to "
                    "a sink channel",
                    stmt.location,
                )
            else:
                raise FlickTypeError(
                    f"unsupported process-body statement in {proc.name!r}",
                    getattr(stmt, "location", None),
                )
        return ProcSpec(
            proc.name, endpoints, tuple(rules), tuple(globals_), foldt
        )

    @staticmethod
    def _endpoint(name: str, t: ty.Type) -> EndpointSpec:
        chan = ty.strip_ref(t)
        assert isinstance(chan, ty.ChannelEndType)
        return EndpointSpec(
            name=name,
            readable=chan.readable,
            writable=chan.writable,
            is_array=chan.is_array,
            read_type=str(chan.read) if chan.read is not None else None,
            write_type=str(chan.write) if chan.write is not None else None,
        )

    def _compile_rule(self, proc_name: str, stmt: ast.PipelineStmt) -> RuleSpec:
        stages = stmt.stages
        first = stages[0]
        if first.func is not None or not isinstance(first.expr, ast.Var):
            raise FlickTypeError(
                f"process {proc_name!r}: pipeline source must be a named "
                "channel parameter",
                stmt.location,
            )
        source = first.expr.name
        sink: Optional[str] = None
        middle = list(stages[1:])
        last = stages[-1]
        if last.func is None:
            if not isinstance(last.expr, ast.Var):
                raise FlickTypeError(
                    f"process {proc_name!r}: pipeline sink must be a named "
                    "channel parameter",
                    stmt.location,
                )
            sink = last.expr.name
            middle = list(stages[1:-1])
        funcs = tuple(
            StageSpec(stage.func, stage.args)
            for stage in middle
            if stage.func is not None
        )
        if len(funcs) != len(middle):
            raise FlickTypeError(
                f"process {proc_name!r}: intermediate pipeline stages must "
                "be function applications",
                stmt.location,
            )
        return RuleSpec(source, funcs, sink)

    def _extract_foldt(
        self, proc_name: str, stmt: ast.IfStmt
    ) -> Optional[FoldTPlan]:
        """Recognise the Listing-3 shape::

            if all_ready(mappers):
                let result = foldt on mappers ordering ...:
                    ...
                result => reducer
        """
        cond = stmt.condition
        if not (isinstance(cond, ast.Call) and cond.func == "all_ready"):
            return None
        body = stmt.then_body
        if len(body) != 2:
            return None
        let, send = body
        # ``result => reducer`` parses as a two-stage pipeline inside a
        # process body; normalise it back to a send.
        if (
            isinstance(send, ast.PipelineStmt)
            and len(send.stages) == 2
            and send.stages[0].func is None
            and send.stages[1].func is None
        ):
            send = ast.SendStmt(
                send.stages[0].expr, send.stages[1].expr, send.location
            )
        if not (
            isinstance(let, ast.LetStmt)
            and isinstance(let.value, ast.FoldTExpr)
            and isinstance(send, ast.SendStmt)
            and isinstance(send.value, ast.Var)
            and send.value.name == let.name
            and isinstance(send.channel, ast.Var)
        ):
            return None
        foldt_expr = let.value
        if not isinstance(foldt_expr.source, ast.Var):
            raise FlickTypeError(
                f"process {proc_name!r}: foldt source must be a named "
                "channel-array parameter",
                stmt.location,
            )
        return FoldTPlan(
            source=foldt_expr.source.name,
            sink=send.channel.name,
            expr=foldt_expr,
        )


# ---------------------------------------------------------------------------
# Handler construction (used by the runtime's compute tasks)
# ---------------------------------------------------------------------------


class RuleHandler:
    """Executable form of a :class:`RuleSpec`.

    ``context`` maps channel parameter names to runtime channel objects
    (single channels expose ``send``; arrays are indexable sequences) and
    global names to their state objects.  Calling the handler with a
    message runs the stages and routes the result; it returns the number
    of interpreter operations consumed, which the runtime converts into
    virtual CPU time.
    """

    def __init__(
        self,
        rule: RuleSpec,
        interpreter: Interpreter,
        context: Dict[str, object],
    ):
        self._rule = rule
        self._interp = interpreter
        self._context = context

    @property
    def source(self) -> str:
        return self._rule.source

    @property
    def sink(self) -> Optional[str]:
        return self._rule.sink

    def __call__(self, message) -> int:
        interp = self._interp
        interp.reset_ops()
        value = message
        for stage in self._rule.stages:
            bound = [
                self._eval_bound(arg) for arg in stage.bound_args
            ]
            value = interp.call_function(stage.func, (*bound, value))
        if self._rule.sink is not None:
            channel = self._context[self._rule.sink]
            channel.send(value)
        return interp.reset_ops() + 1

    def _eval_bound(self, expr: ast.Expr):
        if isinstance(expr, ast.Var):
            if expr.name in self._context:
                return self._context[expr.name]
            raise FlickError(
                f"pipeline stage references unbound name {expr.name!r}"
            )
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.StrLit):
            return expr.value
        raise FlickError(
            "pipeline stage bound arguments must be channel parameters, "
            "globals or literals"
        )


class FoldTHandler:
    """Key extraction and pairwise combine for a foldt merge tree node."""

    def __init__(self, plan: FoldTPlan, interpreter: Interpreter):
        self._plan = plan
        self._interp = interpreter

    def key(self, element: Record):
        return self._interp.order_key(self._plan.expr, element)

    def combine(self, left: Record, right: Record) -> Record:
        return self._interp.combine(self._plan.expr, left, right)

    def combine_with_ops(self, left: Record, right: Record):
        self._interp.reset_ops()
        merged = self._interp.combine(self._plan.expr, left, right)
        return merged, self._interp.reset_ops() + 1


def build_rule_handler(
    program: CompiledProgram,
    rule: RuleSpec,
    context: Dict[str, object],
    tier: str = "interp",
) -> Union[RuleHandler, "CompiledRuleHandler"]:
    """Construct the rule handler for ``tier``.

    Both tiers share one contract: ``handler(message) -> op_count`` with
    identical values sent to the sink and bit-identical op counts, so
    the runtime's virtual-time charging is tier-independent.
    """
    if tier == "compiled":
        return program.executor("compiled").rule_handler(rule, context)
    executor = program.executor(tier)  # validates the tier name
    return RuleHandler(rule, executor, context)


def build_foldt_handler(
    program: CompiledProgram,
    plan: FoldTPlan,
    tier: str = "interp",
) -> Union[FoldTHandler, "CompiledFoldTHandler"]:
    """Construct the foldt merge-tree handler for ``tier``."""
    if tier == "compiled":
        return program.executor("compiled").foldt_handler(plan)
    executor = program.executor(tier)
    return FoldTHandler(plan, executor)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def compile_checked(checked: CheckedProgram) -> CompiledProgram:
    """Compile an already type-checked program."""
    report = check_termination(checked.program)
    return Compiler(checked, report).compile()


def compile_program(program: ast.Program) -> CompiledProgram:
    """Type check, termination check and compile an AST."""
    return compile_checked(check_program(program))


def compile_source(source: str, filename: str = "<flick>") -> CompiledProgram:
    """End-to-end: parse, check and compile FLICK source text."""
    return compile_program(parse(source, filename))
