"""Built-in functions and values of the FLICK language.

The paper's listings use ``hash``, ``len``, ``empty_dict`` and
``all_ready``; section 4.3 adds the higher-order ``fold``/``map``/
``filter`` primitives (which compile to finite loops) and ``foldt``.
Each builtin carries both a typing rule and a runtime implementation so
the type checker and the interpreter stay in sync by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.errors import FlickTypeError
from repro.core.ids import stable_hash
from repro.lang import types as ty


@dataclass(frozen=True)
class Builtin:
    """A built-in function: a name, a typing rule and an implementation.

    ``type_rule`` receives the argument types and returns the result type
    (raising :class:`FlickTypeError` on misuse).  ``impl`` receives the
    evaluated argument values.
    """

    name: str
    type_rule: Callable[[Sequence[ty.Type]], ty.Type]
    impl: Callable[..., object]
    min_args: int = 0
    max_args: Optional[int] = None


def _check_arity(name: str, args: Sequence, lo: int, hi: Optional[int]) -> None:
    if len(args) < lo or (hi is not None and len(args) > hi):
        expect = str(lo) if hi == lo else f"{lo}..{hi if hi is not None else 'n'}"
        raise FlickTypeError(
            f"builtin {name!r} expects {expect} argument(s), got {len(args)}"
        )


# -- typing rules ----------------------------------------------------------


def _hash_rule(args: Sequence[ty.Type]) -> ty.Type:
    _check_arity("hash", args, 1, 1)
    arg = ty.strip_ref(args[0])
    if isinstance(arg, (ty.StringType, ty.IntType, ty.AnyType)):
        return ty.INTEGER
    raise FlickTypeError(f"hash expects a string or integer, got {arg}")


def _len_rule(args: Sequence[ty.Type]) -> ty.Type:
    _check_arity("len", args, 1, 1)
    arg = ty.strip_ref(args[0])
    if isinstance(
        arg,
        (ty.StringType, ty.ListSeqType, ty.DictMapType, ty.AnyType),
    ):
        return ty.INTEGER
    if isinstance(arg, ty.ChannelEndType) and arg.is_array:
        return ty.INTEGER
    raise FlickTypeError(f"len expects a string, list, dict or channel array, got {arg}")


def _empty_dict_rule(args: Sequence[ty.Type]) -> ty.Type:
    _check_arity("empty_dict", args, 0, 0)
    return ty.DictMapType(ty.ANY, ty.ANY)


def _all_ready_rule(args: Sequence[ty.Type]) -> ty.Type:
    _check_arity("all_ready", args, 1, 1)
    arg = args[0]
    if isinstance(arg, ty.ChannelEndType) and arg.is_array and arg.readable:
        return ty.BOOLEAN
    raise FlickTypeError(f"all_ready expects a readable channel array, got {arg}")


def _str_concat_rule(args: Sequence[ty.Type]) -> ty.Type:
    _check_arity("concat", args, 2, 2)
    for arg in args:
        if not isinstance(ty.strip_ref(arg), (ty.StringType, ty.AnyType)):
            raise FlickTypeError(f"concat expects strings, got {arg}")
    return ty.STRING


def _to_int_rule(args: Sequence[ty.Type]) -> ty.Type:
    _check_arity("to_int", args, 1, 1)
    arg = ty.strip_ref(args[0])
    if isinstance(arg, (ty.StringType, ty.IntType, ty.AnyType)):
        return ty.INTEGER
    raise FlickTypeError(f"to_int expects a string or integer, got {arg}")


def _to_str_rule(args: Sequence[ty.Type]) -> ty.Type:
    _check_arity("to_str", args, 1, 1)
    return ty.STRING


def _min_max_rule(name: str):
    def rule(args: Sequence[ty.Type]) -> ty.Type:
        _check_arity(name, args, 2, 2)
        for arg in args:
            if not isinstance(ty.strip_ref(arg), (ty.IntType, ty.AnyType)):
                raise FlickTypeError(f"{name} expects integers, got {arg}")
        return ty.INTEGER

    return rule


# -- implementations ---------------------------------------------------------


def _hash_impl(value) -> int:
    return stable_hash(value)


def _len_impl(value) -> int:
    return len(value)


def _empty_dict_impl() -> dict:
    return {}


def _all_ready_impl(channel_array) -> bool:
    # ``channel_array`` is the runtime's channel-array view; the runtime
    # binds readiness to "every member channel has at least one value".
    return all(getattr(c, "ready", lambda: bool(c))() for c in channel_array)


def _concat_impl(a: str, b: str) -> str:
    return a + b


def _to_int_impl(value) -> int:
    return int(value)


def _to_str_impl(value) -> str:
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    return str(value)


BUILTINS = {
    b.name: b
    for b in (
        Builtin("hash", _hash_rule, _hash_impl, 1, 1),
        Builtin("len", _len_rule, _len_impl, 1, 1),
        Builtin("empty_dict", _empty_dict_rule, _empty_dict_impl, 0, 0),
        Builtin("all_ready", _all_ready_rule, _all_ready_impl, 1, 1),
        Builtin("concat", _str_concat_rule, _concat_impl, 2, 2),
        Builtin("to_int", _to_int_rule, _to_int_impl, 1, 1),
        Builtin("to_str", _to_str_rule, _to_str_impl, 1, 1),
        Builtin("min", _min_max_rule("min"), min, 2, 2),
        Builtin("max", _min_max_rule("max"), max, 2, 2),
    )
}

# Zero-argument builtins that may be referenced without parentheses
# (Listing 1 writes ``global cache := empty_dict``).
VALUE_BUILTINS = frozenset({"empty_dict"})

# Higher-order primitives handled specially by the checker/interpreter.
HIGHER_ORDER = frozenset({"fold", "map", "filter"})


def is_builtin(name: str) -> bool:
    return name in BUILTINS or name in HIGHER_ORDER
