"""Token definitions for the FLICK language lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import SourceLocation

# Token kinds are plain strings; keeping them in one frozenset makes the
# parser's expectations auditable.
KEYWORDS = frozenset(
    {
        "type",
        "proc",
        "fun",
        "record",
        "global",
        "let",
        "if",
        "elif",
        "else",
        "ref",
        "dict",
        "list",
        "and",
        "or",
        "not",
        "mod",
        "fold",
        "foldt",
        "map",
        "filter",
        "on",
        "ordering",
        "by",
        "as",
        "True",
        "False",
        "None",
    }
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    "=>",
    ":=",
    "->",
    "<>",
    "<=",
    ">=",
    "==",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "<",
    ">",
    ":",
    ",",
    ".",
    "|",
    "=",
    "+",
    "-",
    "*",
    "/",
    "_",
)

# Kinds that are not operators or keywords.
NAME = "NAME"
INT = "INT"
STRING = "STRING"
NEWLINE = "NEWLINE"
INDENT = "INDENT"
DEDENT = "DEDENT"
EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is either one of the literal operator strings, a keyword, or
    one of the symbolic kinds (NAME, INT, STRING, NEWLINE, INDENT, DEDENT,
    EOF).  ``value`` carries the decoded payload for NAME/INT/STRING.
    """

    kind: str
    value: Optional[object]
    location: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.value is not None and self.kind in (NAME, INT, STRING):
            return f"Token({self.kind}={self.value!r}@{self.location})"
        return f"Token({self.kind}@{self.location})"
