"""Runtime values manipulated by compiled FLICK programs.

The single interesting value class is :class:`Record`: a typed, ordered
bundle of named fields.  Records are produced by the generated message
parsers, by record constructors in FLICK code (``kv(e_key, v)``), and flow
through task-graph channels.  They are mutable (FLICK permits field
assignment, e.g. updating a cached response) but carry a fixed field set:
adding fields after construction is an error, which mirrors the
static-memory discipline of the language.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.core.errors import RuntimeFlickError


class Record:
    """A FLICK record value: a type name plus ordered named fields.

    Records parsed off the wire carry their raw serialised bytes
    (``raw``); as long as the record is not mutated (``dirty`` is False)
    an output task can emit ``raw`` verbatim instead of re-encoding —
    the paper's "copied in their wire format representation" fast path.
    """

    __slots__ = ("_type_name", "_fields", "raw", "dirty", "spans")

    def __init__(
        self,
        type_name: str,
        fields: Dict[str, object],
        raw: bytes = None,
    ):
        object.__setattr__(self, "_type_name", type_name)
        object.__setattr__(self, "_fields", dict(fields))
        object.__setattr__(self, "raw", raw)
        object.__setattr__(self, "dirty", False)
        object.__setattr__(self, "spans", None)

    # -- field access -----------------------------------------------------

    @property
    def type_name(self) -> str:
        return self._type_name

    def __getattr__(self, name: str):
        fields = object.__getattribute__(self, "_fields")
        if name in fields:
            return fields[name]
        raise AttributeError(
            f"record {self._type_name!r} has no field {name!r}"
        )

    def get(self, name: str):
        try:
            return self._fields[name]
        except KeyError:
            raise RuntimeFlickError(
                f"record {self._type_name!r} has no field {name!r}"
            ) from None

    def set(self, name: str, value) -> None:
        if name not in self._fields:
            raise RuntimeFlickError(
                f"record {self._type_name!r} has no field {name!r}; "
                "fields cannot be added at run time"
            )
        self._fields[name] = value
        object.__setattr__(self, "dirty", True)

    def __getitem__(self, name: str):
        return self.get(name)

    def __setitem__(self, name: str, value) -> None:
        self.set(name, value)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._fields.keys())

    def items(self) -> Iterator[Tuple[str, object]]:
        return iter(self._fields.items())

    def as_dict(self) -> Dict[str, object]:
        return dict(self._fields)

    def copy(self) -> "Record":
        return Record(self._type_name, self._fields, self.raw)

    # -- equality / hashing / repr ------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Record)
            and other._type_name == self._type_name
            and other._fields == self._fields
        )

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self):
        return hash((self._type_name, tuple(sorted(self._fields.items()))))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._fields.items())
        return f"{self._type_name}({inner})"


def record_size_bytes(value) -> int:
    """Approximate in-memory/wire size of a FLICK value in bytes.

    Used by the runtime for buffer accounting and by cost models for
    per-byte charges when no serialised representation is available.
    """
    if isinstance(value, Record):
        return sum(record_size_bytes(v) for _, v in value.items()) or 1
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8", "replace"))
    if isinstance(value, bool) or value is None:
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, dict):
        return sum(
            record_size_bytes(k) + record_size_bytes(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple)):
        return sum(record_size_bytes(v) for v in value)
    return 8
