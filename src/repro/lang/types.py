"""Semantic types for the FLICK static type system.

These are the checker's internal representation, distinct from the
syntactic :class:`repro.lang.ast.TypeExpr` nodes.  FLICK is strongly and
statically typed (section 4.3); every built-in type is finite, and records
carry their field layout so the compiler can generate specialised parsing
code for exactly the accessed fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Type:
    """Base class for semantic types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__


@dataclass(frozen=True)
class IntType(Type):
    signed: bool = True
    size: Optional[int] = None  # wire size in bytes, if annotated

    def __str__(self) -> str:
        return "integer"


@dataclass(frozen=True)
class StringType(Type):
    size: Optional[int] = None

    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "boolean"


@dataclass(frozen=True)
class UnitType(Type):
    """The type of ``None`` and of functions returning ``()``."""

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class AnyType(Type):
    """Compatible with every type.

    Used for the element type of ``empty_dict`` before first insertion and
    for builtins that are polymorphic (``hash``, ``len``).
    """

    def __str__(self) -> str:
        return "any"


@dataclass(frozen=True)
class RecordType(Type):
    """A user-declared record.  ``fields`` lists only the *named* fields;
    anonymous ``_`` fields exist solely in the wire grammar and are not
    addressable from programs."""

    name: str
    fields: Tuple[Tuple[str, Type], ...]

    def field_type(self, fname: str) -> Optional[Type]:
        for name, ftype in self.fields:
            if name == fname:
                return ftype
        return None

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DictMapType(Type):
    key: Type
    value: Type

    def __str__(self) -> str:
        return f"dict<{self.key}*{self.value}>"


@dataclass(frozen=True)
class ListSeqType(Type):
    element: Type

    def __str__(self) -> str:
        return f"list<{self.element}>"


@dataclass(frozen=True)
class RefCellType(Type):
    inner: Type

    def __str__(self) -> str:
        return f"ref {self.inner}"


@dataclass(frozen=True)
class ChannelEndType(Type):
    """A channel endpoint as seen by a process or function parameter.

    ``read`` is the type of values the program may *consume* from the
    channel; ``write`` the type it may *produce* into it.  ``None`` on
    either side encodes the restricted directions ``-/T`` and ``T/-``.
    """

    read: Optional[Type]
    write: Optional[Type]
    is_array: bool = False

    @property
    def readable(self) -> bool:
        return self.read is not None

    @property
    def writable(self) -> bool:
        return self.write is not None

    def element(self) -> "ChannelEndType":
        """The endpoint type of one member of a channel array."""
        if not self.is_array:
            raise ValueError("not a channel array")
        return ChannelEndType(self.read, self.write, False)

    def __str__(self) -> str:
        r = str(self.read) if self.read is not None else "-"
        w = str(self.write) if self.write is not None else "-"
        core = f"{r}/{w}"
        return f"[{core}]" if self.is_array else core


@dataclass(frozen=True)
class FunType(Type):
    params: Tuple[Type, ...]
    returns: Tuple[Type, ...]

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        rets = ", ".join(str(r) for r in self.returns)
        return f"({args}) -> ({rets})"


INTEGER = IntType()
STRING = StringType()
BOOLEAN = BoolType()
UNIT = UnitType()
ANY = AnyType()

_PRIMITIVES: Dict[str, Type] = {
    "integer": INTEGER,
    "int": INTEGER,
    "string": STRING,
    "bytes": STRING,
    "boolean": BOOLEAN,
    "bool": BOOLEAN,
    "unit": UNIT,
}


def primitive(name: str) -> Optional[Type]:
    """Look up a primitive type by its surface name."""
    return _PRIMITIVES.get(name)


def strip_ref(t: Type) -> Type:
    """Unwrap ``ref`` so value operations see the underlying type."""
    while isinstance(t, RefCellType):
        t = t.inner
    return t


def compatible(expected: Type, actual: Type) -> bool:
    """Structural compatibility used for assignments and argument passing.

    ``any`` unifies with everything; records are nominal; containers are
    compared element-wise.  ``unit`` (the None literal) is accepted where a
    value may be absent, which mirrors the paper's ``cache[k] = None`` test.
    """
    expected = strip_ref(expected)
    actual = strip_ref(actual)
    if isinstance(expected, AnyType) or isinstance(actual, AnyType):
        return True
    if isinstance(expected, IntType) and isinstance(actual, IntType):
        return True
    if isinstance(expected, StringType) and isinstance(actual, StringType):
        return True
    if isinstance(expected, BoolType) and isinstance(actual, BoolType):
        return True
    if isinstance(expected, UnitType) and isinstance(actual, UnitType):
        return True
    if isinstance(expected, RecordType) and isinstance(actual, RecordType):
        return expected.name == actual.name
    if isinstance(expected, DictMapType) and isinstance(actual, DictMapType):
        return compatible(expected.key, actual.key) and compatible(
            expected.value, actual.value
        )
    if isinstance(expected, ListSeqType) and isinstance(actual, ListSeqType):
        return compatible(expected.element, actual.element)
    if isinstance(expected, ChannelEndType) and isinstance(actual, ChannelEndType):
        if expected.is_array != actual.is_array:
            return False
        # A bidirectional channel can be passed where a restricted one is
        # expected (dropping a capability is always safe), not vice versa.
        if expected.read is not None:
            if actual.read is None or not compatible(expected.read, actual.read):
                return False
        if expected.write is not None:
            if actual.write is None or not compatible(expected.write, actual.write):
                return False
        return True
    return False
