"""Pretty printer for FLICK ASTs.

Emits canonical source text that re-parses to an equivalent AST; used by
the round-trip tests and for diagnostic dumps of compiled programs.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast

_INDENT = "    "


def _type_expr(t: ast.TypeExpr) -> str:
    if isinstance(t, ast.NamedType):
        return t.name
    if isinstance(t, ast.DictType):
        return f"dict<{_type_expr(t.key)}*{_type_expr(t.value)}>"
    if isinstance(t, ast.ListType):
        return f"list<{_type_expr(t.element)}>"
    if isinstance(t, ast.RefType):
        return f"ref {_type_expr(t.inner)}"
    if isinstance(t, ast.ChannelType):
        read = _type_expr(t.read) if t.read else "-"
        write = _type_expr(t.write) if t.write else "-"
        core = f"{read}/{write}"
        return f"[{core}]" if t.is_array else core
    raise TypeError(f"unknown type expression {t!r}")


def _expr(e: ast.Expr) -> str:
    if isinstance(e, ast.IntLit):
        return str(e.value)
    if isinstance(e, ast.StrLit):
        escaped = e.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(e, ast.BoolLit):
        return "True" if e.value else "False"
    if isinstance(e, ast.NoneLit):
        return "None"
    if isinstance(e, ast.Var):
        return e.name
    if isinstance(e, ast.FieldAccess):
        return f"{_expr(e.obj)}.{e.field}"
    if isinstance(e, ast.Index):
        return f"{_expr(e.obj)}[{_expr(e.index)}]"
    if isinstance(e, ast.Call):
        args = ", ".join(_expr(a) for a in e.args)
        return f"{e.func}({args})"
    if isinstance(e, ast.BinOp):
        return f"({_expr(e.left)} {e.op} {_expr(e.right)})"
    if isinstance(e, ast.UnaryOp):
        if e.op == "not":
            return f"(not {_expr(e.operand)})"
        return f"(-{_expr(e.operand)})"
    raise TypeError(f"unknown expression {e!r}")


def _stage(s: ast.PipelineStage) -> str:
    if s.func is not None:
        args = ", ".join(_expr(a) for a in s.args)
        return f"{s.func}({args})"
    return _expr(s.expr)


def _stmt(s: ast.Stmt, depth: int, out: List[str]) -> None:
    pad = _INDENT * depth
    if isinstance(s, ast.GlobalDecl):
        out.append(f"{pad}global {s.name} := {_expr(s.init)}")
    elif isinstance(s, ast.LetStmt):
        if isinstance(s.value, ast.FoldTExpr):
            out.append(f"{pad}let {s.name} = {_foldt_header(s.value)}")
            for stmt in s.value.body:
                _stmt(stmt, depth + 1, out)
        else:
            out.append(f"{pad}let {s.name} = {_expr(s.value)}")
    elif isinstance(s, ast.AssignStmt):
        out.append(f"{pad}{_expr(s.target)} := {_expr(s.value)}")
    elif isinstance(s, ast.SendStmt):
        out.append(f"{pad}{_expr(s.value)} => {_expr(s.channel)}")
    elif isinstance(s, ast.IfStmt):
        out.append(f"{pad}if {_expr(s.condition)}:")
        for stmt in s.then_body:
            _stmt(stmt, depth + 1, out)
        if s.else_body:
            out.append(f"{pad}else:")
            for stmt in s.else_body:
                _stmt(stmt, depth + 1, out)
    elif isinstance(s, ast.PipelineStmt):
        out.append(pad + " => ".join(_stage(st) for st in s.stages))
    elif isinstance(s, ast.ExprStmt):
        if isinstance(s.expr, ast.FoldTExpr):
            out.append(f"{pad}{_foldt_header(s.expr)}")
            for stmt in s.expr.body:
                _stmt(stmt, depth + 1, out)
        else:
            out.append(f"{pad}{_expr(s.expr)}")
    else:
        raise TypeError(f"unknown statement {s!r}")


def _foldt_header(e: ast.FoldTExpr) -> str:
    return (
        f"foldt on {_expr(e.source)} ordering {e.elem_var} "
        f"{e.left_var}, {e.right_var} by {_expr(e.order_expr)} "
        f"as {e.key_alias}:"
    )


def _param(p: ast.Param) -> str:
    if isinstance(p.type, ast.ChannelType):
        return f"{_type_expr(p.type)} {p.name}"
    return f"{p.name}: {_type_expr(p.type)}"


def format_program(program: ast.Program) -> str:
    """Render ``program`` as canonical FLICK source text."""
    out: List[str] = []
    for tdecl in program.types:
        out.append(f"type {tdecl.name}: record")
        for fdecl in tdecl.fields:
            name = fdecl.name if fdecl.name is not None else "_"
            line = f"{_INDENT}{name} : {_type_expr(fdecl.type)}"
            if fdecl.attrs:
                attrs = ", ".join(f"{k}={_expr(v)}" for k, v in fdecl.attrs)
                line += f" {{{attrs}}}"
            out.append(line)
        out.append("")
    for proc in program.procs:
        params = ", ".join(_param(p) for p in proc.params)
        out.append(f"proc {proc.name}: ({params})")
        for stmt in proc.body:
            _stmt(stmt, 1, out)
        out.append("")
    for fun in program.funs:
        params = ", ".join(_param(p) for p in fun.params)
        returns = ", ".join(_type_expr(r) for r in fun.returns)
        out.append(f"fun {fun.name}: ({params}) -> ({returns})")
        for stmt in fun.body:
            _stmt(stmt, 1, out)
        out.append("")
    return "\n".join(out).rstrip() + "\n"
