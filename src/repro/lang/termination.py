"""Termination and bounded-resource analysis for FLICK programs.

Section 4.3 of the paper restricts FLICK so that every invocation of a
network service terminates and uses a statically bounded amount of
resources.  The language already has no ``while`` construct; the remaining
obligations checked here are:

* **No recursion** — user functions must be first-order and non-recursive,
  directly or indirectly.  We build the call graph (including the function
  names passed to ``fold``/``map``/``filter`` and functions invoked from
  ``foldt`` bodies) and reject any cycle.
* **Bounded iteration only** — iteration happens solely through the
  higher-order primitives over finite lists; their function arguments must
  name declared user functions, never builtins with side effects.
* **Static channel topology** — channels cannot be created at run time; a
  program may only mention channels bound in a process signature.

The analysis also computes a conservative per-function **cost bound**
(number of AST operations executed per invocation, treating higher-order
primitives as ``O(input length)``) which the runtime uses as the default
per-message compute cost estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.errors import TerminationError
from repro.lang import ast
from repro.lang.builtins import HIGHER_ORDER, is_builtin


@dataclass(frozen=True)
class TerminationReport:
    """Result of the analysis: call graph, topological order, cost bounds."""

    call_graph: Dict[str, Tuple[str, ...]]
    topological_order: Tuple[str, ...]
    cost_bounds: Dict[str, int]


def _called_functions(body: Tuple[ast.Stmt, ...], known: Set[str]) -> Set[str]:
    """Names of user functions referenced anywhere in ``body``."""
    callees: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                if node.func in known:
                    callees.add(node.func)
                if node.func in HIGHER_ORDER and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Var) and first.name in known:
                        callees.add(first.name)
            elif isinstance(node, ast.PipelineStage) and node.func in known:
                callees.add(node.func)
    return callees


def _detect_cycle(graph: Dict[str, Tuple[str, ...]]) -> List[str]:
    """Return one cycle as a list of names, or [] if the graph is acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in graph}
    stack: List[str] = []

    def visit(name: str) -> List[str]:
        colour[name] = GREY
        stack.append(name)
        for callee in graph.get(name, ()):
            if colour.get(callee, BLACK) == GREY:
                idx = stack.index(callee)
                return stack[idx:] + [callee]
            if colour.get(callee) == WHITE:
                found = visit(callee)
                if found:
                    return found
        stack.pop()
        colour[name] = BLACK
        return []

    for name in graph:
        if colour[name] == WHITE:
            found = visit(name)
            if found:
                return found
    return []


def _topological_order(graph: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
    order: List[str] = []
    seen: Set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        for callee in graph.get(name, ()):
            visit(callee)
        order.append(name)

    for name in graph:
        visit(name)
    return tuple(order)


# Cost weights for the static bound; arbitrary units proportional to "one
# simple operation".  Higher-order primitives multiply the callee bound by
# a nominal input length, reflecting O(n) iteration over a finite list.
_NOMINAL_LIST_LENGTH = 16
_OP_COST = 1


def _expr_cost(expr: ast.Expr, bounds: Dict[str, int]) -> int:
    cost = _OP_COST
    if isinstance(expr, ast.Call):
        for arg in expr.args:
            cost += _expr_cost(arg, bounds)
        if expr.func in HIGHER_ORDER:
            callee = expr.args[0].name if expr.args and isinstance(
                expr.args[0], ast.Var
            ) else None
            inner = bounds.get(callee, _OP_COST)
            cost += inner * _NOMINAL_LIST_LENGTH
        else:
            cost += bounds.get(expr.func, _OP_COST)
        return cost
    if isinstance(expr, ast.BinOp):
        return cost + _expr_cost(expr.left, bounds) + _expr_cost(expr.right, bounds)
    if isinstance(expr, ast.UnaryOp):
        return cost + _expr_cost(expr.operand, bounds)
    if isinstance(expr, ast.FieldAccess):
        return cost + _expr_cost(expr.obj, bounds)
    if isinstance(expr, ast.Index):
        return cost + _expr_cost(expr.obj, bounds) + _expr_cost(expr.index, bounds)
    if isinstance(expr, ast.FoldTExpr):
        body = _body_cost(expr.body, bounds)
        return cost + body * _NOMINAL_LIST_LENGTH
    return cost


def _stmt_cost(stmt: ast.Stmt, bounds: Dict[str, int]) -> int:
    if isinstance(stmt, ast.LetStmt):
        return _OP_COST + _expr_cost(stmt.value, bounds)
    if isinstance(stmt, ast.AssignStmt):
        return (
            _OP_COST
            + _expr_cost(stmt.target, bounds)
            + _expr_cost(stmt.value, bounds)
        )
    if isinstance(stmt, ast.SendStmt):
        return (
            _OP_COST
            + _expr_cost(stmt.value, bounds)
            + _expr_cost(stmt.channel, bounds)
        )
    if isinstance(stmt, ast.IfStmt):
        then_cost = _body_cost(stmt.then_body, bounds)
        else_cost = _body_cost(stmt.else_body, bounds)
        return (
            _OP_COST
            + _expr_cost(stmt.condition, bounds)
            + max(then_cost, else_cost)
        )
    if isinstance(stmt, ast.ExprStmt):
        return _expr_cost(stmt.expr, bounds)
    if isinstance(stmt, (ast.GlobalDecl,)):
        return _OP_COST + _expr_cost(stmt.init, bounds)
    if isinstance(stmt, ast.PipelineStmt):
        total = _OP_COST
        for stage in stmt.stages:
            if stage.func is not None:
                total += bounds.get(stage.func, _OP_COST)
        return total
    return _OP_COST


def _body_cost(body: Tuple[ast.Stmt, ...], bounds: Dict[str, int]) -> int:
    return sum(_stmt_cost(stmt, bounds) for stmt in body) or _OP_COST


def check_termination(program: ast.Program) -> TerminationReport:
    """Verify the bounded-computation discipline; raise on violation.

    Returns a :class:`TerminationReport` containing the acyclic call graph
    in topological (callee-first) order and static cost bounds.
    """
    known = {f.name for f in program.funs}
    graph: Dict[str, Tuple[str, ...]] = {}
    for fun in program.funs:
        graph[fun.name] = tuple(sorted(_called_functions(fun.body, known)))
    for proc in program.procs:
        graph[f"proc:{proc.name}"] = tuple(
            sorted(_called_functions(proc.body, known))
        )

    cycle = _detect_cycle(graph)
    if cycle:
        pretty = " -> ".join(cycle)
        raise TerminationError(
            f"recursion is not allowed in FLICK; call cycle: {pretty}"
        )

    _check_higher_order_arguments(program, known)

    order = _topological_order(graph)
    bounds: Dict[str, int] = {}
    decls = {f.name: f for f in program.funs}
    for name in order:
        if name in decls:
            bounds[name] = _body_cost(decls[name].body, bounds)
    for proc in program.procs:
        bounds[f"proc:{proc.name}"] = _body_cost(proc.body, bounds)
    return TerminationReport(graph, order, bounds)


def _check_higher_order_arguments(program: ast.Program, known: Set[str]) -> None:
    """fold/map/filter must iterate with declared user functions."""
    bodies = [(f"fun {f.name}", f.body) for f in program.funs]
    bodies += [(f"proc {p.name}", p.body) for p in program.procs]
    for owner, body in bodies:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and node.func in HIGHER_ORDER:
                    if not node.args or not isinstance(node.args[0], ast.Var):
                        raise TerminationError(
                            f"{owner}: {node.func} requires a function name "
                            "as its first argument"
                        )
                    target = node.args[0].name
                    if target not in known:
                        if is_builtin(target):
                            raise TerminationError(
                                f"{owner}: {node.func} over builtin "
                                f"{target!r} is not allowed"
                            )
                        raise TerminationError(
                            f"{owner}: {node.func} refers to unknown "
                            f"function {target!r}"
                        )
