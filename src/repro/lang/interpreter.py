"""Evaluator for compiled FLICK function and process logic.

The FLICK compiler (``repro.lang.compiler``) lowers processes into task
graphs whose compute tasks execute FLICK function bodies.  In the paper
those bodies are translated to C++; here they are executed by this
interpreter, which plays the role of the generated code.  It counts the
abstract operations it performs (``ops`` — one unit per AST node touched)
so the runtime can charge proportional virtual CPU time, making "heavier
FLICK code" genuinely cost more simulated time.

Channels appear to the interpreter as any object with a ``send(value)``
method; channel arrays additionally support ``len`` and indexing.  The
runtime provides real task channels; tests use simple list-backed stubs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import RuntimeFlickError
from repro.lang import ast
from repro.lang.builtins import BUILTINS, HIGHER_ORDER, VALUE_BUILTINS
from repro.lang.typecheck import CheckedProgram
from repro.lang.values import Record


class _Env:
    """Chained mutable variable environment."""

    __slots__ = ("_vars", "_parent")

    def __init__(self, parent: Optional["_Env"] = None):
        self._vars: Dict[str, object] = {}
        self._parent = parent

    def lookup(self, name: str):
        env: Optional[_Env] = self
        while env is not None:
            if name in env._vars:
                return env._vars[name]
            env = env._parent
        raise RuntimeFlickError(f"unbound variable {name!r}")

    def bind(self, name: str, value) -> None:
        self._vars[name] = value

    def assign(self, name: str, value) -> None:
        env: Optional[_Env] = self
        while env is not None:
            if name in env._vars:
                env._vars[name] = value
                return
            env = env._parent
        raise RuntimeFlickError(f"assignment to unbound variable {name!r}")

    def child(self) -> "_Env":
        return _Env(self)


class Interpreter:
    """Executes function bodies of a type-checked FLICK program."""

    def __init__(self, checked: CheckedProgram):
        self._checked = checked
        self._funs: Dict[str, ast.FunDecl] = {
            f.name: f for f in checked.program.funs
        }
        self._records = checked.records
        self.ops = 0

    # -- public API ------------------------------------------------------

    def reset_ops(self) -> int:
        """Return the operation count accumulated since the last reset."""
        count = self.ops
        self.ops = 0
        return count

    def call_function(self, name: str, args: Sequence[object]):
        """Invoke user function ``name`` with evaluated ``args``."""
        decl = self._funs.get(name)
        if decl is None:
            raise RuntimeFlickError(f"unknown function {name!r}")
        if len(args) != len(decl.params):
            raise RuntimeFlickError(
                f"{name!r} expects {len(decl.params)} argument(s), "
                f"got {len(args)}"
            )
        env = _Env()
        for param, value in zip(decl.params, args):
            env.bind(param.name, value)
        return self._exec_body(decl.body, env)

    def eval_const(self, expr: ast.Expr):
        """Evaluate a closed expression (e.g. a global initialiser)."""
        return self._eval(expr, _Env())

    def make_record(self, type_name: str, values: Sequence[object]) -> Record:
        record_type = self._records[type_name]
        names = record_type.field_names()
        if len(values) != len(names):
            raise RuntimeFlickError(
                f"constructor {type_name!r} expects {len(names)} values"
            )
        return Record(type_name, dict(zip(names, values)))

    # -- statement execution ------------------------------------------------

    def _exec_body(self, body: Tuple[ast.Stmt, ...], env: _Env):
        result = None
        for stmt in body:
            result = self._exec_stmt(stmt, env)
        return result

    def _exec_stmt(self, stmt: ast.Stmt, env: _Env):
        self.ops += 1
        if isinstance(stmt, ast.LetStmt):
            env.bind(stmt.name, self._eval(stmt.value, env))
            return None
        if isinstance(stmt, ast.AssignStmt):
            self._exec_assign(stmt, env)
            return None
        if isinstance(stmt, ast.SendStmt):
            value = self._eval(stmt.value, env)
            channel = self._eval(stmt.channel, env)
            self._send(channel, value)
            return None
        if isinstance(stmt, ast.IfStmt):
            if self._truthy(self._eval(stmt.condition, env)):
                return self._exec_body(stmt.then_body, env.child())
            if stmt.else_body:
                return self._exec_body(stmt.else_body, env.child())
            return None
        if isinstance(stmt, ast.ExprStmt):
            return self._eval(stmt.expr, env)
        if isinstance(stmt, ast.GlobalDecl):
            # Globals are materialised by the runtime before execution;
            # executing the declaration directly (tests) just binds it.
            env.bind(stmt.name, self._eval(stmt.init, env))
            return None
        raise RuntimeFlickError(f"cannot execute statement {stmt!r}")

    def _exec_assign(self, stmt: ast.AssignStmt, env: _Env) -> None:
        value = self._eval(stmt.value, env)
        target = stmt.target
        if isinstance(target, ast.Var):
            env.assign(target.name, value)
            return
        if isinstance(target, ast.Index):
            container = self._eval(target.obj, env)
            key = self._eval(target.index, env)
            if isinstance(container, dict):
                container[key] = value
                return
            raise RuntimeFlickError(
                f"cannot index-assign into {type(container).__name__}"
            )
        if isinstance(target, ast.FieldAccess):
            obj = self._eval(target.obj, env)
            if isinstance(obj, Record):
                obj.set(target.field, value)
                return
            raise RuntimeFlickError(
                f"cannot assign field of {type(obj).__name__}"
            )
        raise RuntimeFlickError("invalid assignment target")

    @staticmethod
    def _send(channel, value) -> None:
        send = getattr(channel, "send", None)
        if send is None:
            raise RuntimeFlickError(
                f"value {channel!r} is not a writable channel"
            )
        send(value)

    @staticmethod
    def _truthy(value) -> bool:
        if isinstance(value, bool):
            return value
        if value is None:
            return False
        raise RuntimeFlickError(
            f"condition evaluated to non-boolean {value!r}"
        )

    # -- expression evaluation -------------------------------------------------

    def _eval(self, expr: ast.Expr, env: _Env):
        self.ops += 1
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.NoneLit):
            return None
        if isinstance(expr, ast.Var):
            if expr.name in VALUE_BUILTINS:
                try:
                    return env.lookup(expr.name)
                except RuntimeFlickError:
                    return BUILTINS[expr.name].impl()
            return env.lookup(expr.name)
        if isinstance(expr, ast.FieldAccess):
            obj = self._eval(expr.obj, env)
            if isinstance(obj, Record):
                return obj.get(expr.field)
            raise RuntimeFlickError(
                f"cannot read field {expr.field!r} of {type(obj).__name__}"
            )
        if isinstance(expr, ast.Index):
            container = self._eval(expr.obj, env)
            key = self._eval(expr.index, env)
            if isinstance(container, dict):
                # Dict miss yields None, matching Listing 1's cache test.
                return container.get(key)
            if isinstance(container, (list, tuple)):
                return container[key]
            indexed = getattr(container, "__getitem__", None)
            if indexed is not None:
                return indexed(key)
            raise RuntimeFlickError(
                f"cannot index into {type(container).__name__}"
            )
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand, env)
            if expr.op == "not":
                return not self._truthy(value)
            return -value
        if isinstance(expr, ast.FoldTExpr):
            raise RuntimeFlickError(
                "foldt must be compiled to a task tree; use "
                "merge_sorted_streams for reference semantics"
            )
        raise RuntimeFlickError(f"cannot evaluate expression {expr!r}")

    def _eval_call(self, expr: ast.Call, env: _Env):
        name = expr.func
        if name in HIGHER_ORDER:
            return self._eval_higher_order(expr, env)
        if name in BUILTINS:
            args = [self._eval(a, env) for a in expr.args]
            return BUILTINS[name].impl(*args)
        if name in self._records:
            values = [self._eval(a, env) for a in expr.args]
            return self.make_record(name, values)
        args = [self._eval(a, env) for a in expr.args]
        return self.call_function(name, args)

    def _eval_higher_order(self, expr: ast.Call, env: _Env):
        fn_name = expr.args[0].name  # validated statically
        if expr.func == "fold":
            acc = self._eval(expr.args[1], env)
            seq = self._eval(expr.args[2], env)
            self.ops += len(seq)
            for item in seq:
                acc = self.call_function(fn_name, (acc, item))
            return acc
        seq = self._eval(expr.args[1], env)
        self.ops += len(seq)
        if expr.func == "map":
            return [self.call_function(fn_name, (item,)) for item in seq]
        # filter
        return [
            item
            for item in seq
            if self._truthy(self.call_function(fn_name, (item,)))
        ]

    def _eval_binop(self, expr: ast.BinOp, env: _Env):
        op = expr.op
        if op == "and":
            return self._truthy(self._eval(expr.left, env)) and self._truthy(
                self._eval(expr.right, env)
            )
        if op == "or":
            return self._truthy(self._eval(expr.left, env)) or self._truthy(
                self._eval(expr.right, env)
            )
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise RuntimeFlickError("division by zero")
            return left // right
        if op == "mod":
            if right == 0:
                raise RuntimeFlickError("modulo by zero")
            return left % right
        raise RuntimeFlickError(f"unknown operator {op!r}")

    # -- foldt reference semantics -------------------------------------------

    def merge_sorted_streams(
        self, foldt: ast.FoldTExpr, streams: Sequence[Sequence[Record]]
    ) -> List[Record]:
        """Reference (sequential) semantics for ``foldt``.

        Performs a k-way merge over ``streams`` (each sorted by the
        ordering key), combining equal-key elements with the foldt body.
        The compiled task tree must be observationally equivalent to this;
        the property tests assert exactly that.
        """
        merged: List[Record] = []
        for stream in streams:
            for element in stream:
                merged.append(element)
        merged.sort(key=lambda e: self.order_key(foldt, e))
        result: List[Record] = []
        for element in merged:
            if result and self.order_key(foldt, result[-1]) == self.order_key(
                foldt, element
            ):
                result[-1] = self.combine(foldt, result[-1], element)
            else:
                result.append(element)
        return result

    def order_key(self, foldt: ast.FoldTExpr, element: Record):
        env = _Env()
        env.bind(foldt.elem_var, element)
        return self._eval(foldt.order_expr, env)

    def combine(self, foldt: ast.FoldTExpr, left: Record, right: Record) -> Record:
        env = _Env()
        env.bind(foldt.left_var, left)
        env.bind(foldt.right_var, right)
        env.bind(foldt.key_alias, self.order_key(foldt, left))
        result = self._exec_body(foldt.body, env)
        if not isinstance(result, Record):
            raise RuntimeFlickError(
                f"foldt body must produce a record, got {result!r}"
            )
        return result
