"""The FLICK language front end: lexer, parser, checkers and compiler."""

from repro.lang.codegen import (
    CompiledExec,
    CompiledFoldTHandler,
    CompiledRuleHandler,
)
from repro.lang.compiler import (
    EXEC_TIERS,
    CompiledProgram,
    EndpointSpec,
    FoldTHandler,
    FoldTPlan,
    ProcSpec,
    RuleHandler,
    RuleSpec,
    StageSpec,
    build_foldt_handler,
    build_rule_handler,
    compile_program,
    compile_source,
)
from repro.lang.interpreter import Interpreter
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.pretty import format_program
from repro.lang.termination import TerminationReport, check_termination
from repro.lang.typecheck import CheckedProgram, check_program
from repro.lang.values import Record, record_size_bytes

__all__ = [
    "EXEC_TIERS",
    "CompiledExec",
    "CompiledFoldTHandler",
    "CompiledProgram",
    "CompiledRuleHandler",
    "EndpointSpec",
    "FoldTHandler",
    "FoldTPlan",
    "ProcSpec",
    "RuleHandler",
    "RuleSpec",
    "StageSpec",
    "build_foldt_handler",
    "build_rule_handler",
    "compile_program",
    "compile_source",
    "Interpreter",
    "tokenize",
    "parse",
    "format_program",
    "TerminationReport",
    "check_termination",
    "CheckedProgram",
    "check_program",
    "Record",
    "record_size_bytes",
]
