"""Abstract syntax tree for the FLICK language.

Node classes mirror the three declaration forms of a FLICK program
(types, processes, functions) and the statement/expression language used
inside process and function bodies.  All nodes are frozen dataclasses so
that ASTs can be hashed, compared in tests and safely shared between the
type checker, termination checker and compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.errors import SourceLocation

_NOLOC = SourceLocation(0, 0, "<none>")


@dataclass(frozen=True)
class Node:
    """Base class for all AST nodes."""


# ---------------------------------------------------------------------------
# Type expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeExpr(Node):
    """Base class for type annotations appearing in source."""


@dataclass(frozen=True)
class NamedType(TypeExpr):
    """A reference to a primitive or user-declared type, e.g. ``cmd``."""

    name: str


@dataclass(frozen=True)
class DictType(TypeExpr):
    """``dict<K*V>`` — the key/value store abstraction of section 4.3."""

    key: TypeExpr
    value: TypeExpr


@dataclass(frozen=True)
class ListType(TypeExpr):
    """``list<T>`` — finite lists, the only iterable structure."""

    element: TypeExpr


@dataclass(frozen=True)
class RefType(TypeExpr):
    """``ref T`` — a mutable reference parameter (e.g. the shared cache)."""

    inner: TypeExpr


@dataclass(frozen=True)
class ChannelType(TypeExpr):
    """``R/W`` channel annotation.

    ``read`` / ``write`` are the element types visible in each direction;
    either may be ``None`` for the restricted forms ``-/T`` (write-only)
    and ``T/-`` (read-only).  ``is_array`` marks ``[R/W]`` channel arrays.
    """

    read: Optional[TypeExpr]
    write: Optional[TypeExpr]
    is_array: bool = False


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    """Base class for expressions."""


@dataclass(frozen=True)
class IntLit(Expr):
    value: int
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class StrLit(Expr):
    value: str
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class NoneLit(Expr):
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class Var(Expr):
    name: str
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class FieldAccess(Expr):
    """``obj.field`` — reading a record field."""

    obj: Expr
    field: str
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class Index(Expr):
    """``obj[key]`` — dict lookup or channel-array selection."""

    obj: Expr
    index: Expr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class Call(Expr):
    """``f(a, b)`` — call of a user function, builtin or record constructor."""

    func: str
    args: Tuple[Expr, ...]
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; ``op`` is the surface operator (``=``, ``<>``, ...)."""

    op: str
    left: Expr
    right: Expr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "not" or "-"
    operand: Expr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class FoldTExpr(Expr):
    """The parallel tree fold of section 4.3::

        foldt on mappers ordering elem e1, e2 by elem.key as e_key:
            <body producing the combined element>

    ``source`` names the channel array; ``elem_var`` binds the element
    inspected by the ordering expression; ``left_var``/``right_var`` bind
    the two elements being combined in the body.
    """

    source: Expr
    elem_var: str
    left_var: str
    right_var: str
    order_expr: Expr
    key_alias: str
    body: Tuple["Stmt", ...]
    location: SourceLocation = _NOLOC


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(Node):
    """Base class for statements."""


@dataclass(frozen=True)
class LetStmt(Stmt):
    name: str
    value: Expr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class AssignStmt(Stmt):
    """``target := value`` where target is a variable, field or dict slot."""

    target: Expr
    value: Expr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class IfStmt(Stmt):
    condition: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class SendStmt(Stmt):
    """``value => channel`` — write a value to a channel endpoint."""

    value: Expr
    channel: Expr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """A bare expression; as the last statement of a function body it is
    the function's result value (Listing 1 line 22: ``resp``)."""

    expr: Expr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class PipelineStage(Node):
    """One ``=>`` stage in a process pipeline rule.

    A stage is either a channel endpoint (``func is None``: ``expr`` names
    the channel) or a processing function with bound arguments (``func``
    plus ``args``; the in-flight message is appended as the final call
    argument, matching Listing 1).
    """

    expr: Optional[Expr] = None
    func: Optional[str] = None
    args: Tuple[Expr, ...] = ()
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class PipelineStmt(Stmt):
    """A process-body routing rule, e.g.
    ``backends => update_cache(cache) => client``."""

    stages: Tuple[PipelineStage, ...]
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class GlobalDecl(Stmt):
    """``global name := init`` — long-term state shared across instances."""

    name: str
    init: Expr
    location: SourceLocation = _NOLOC


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDecl(Node):
    """A record field.  ``name is None`` encodes the anonymous ``_`` fields
    whose values can never be read or written by the program (section 4.1).
    ``attrs`` carries serialisation annotations (``size``, ``signed``) as
    expressions which may reference earlier fields."""

    name: Optional[str]
    type: TypeExpr
    attrs: Tuple[Tuple[str, Expr], ...] = ()
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class TypeDecl(Node):
    """``type name: record`` followed by field declarations."""

    name: str
    fields: Tuple[FieldDecl, ...]
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class Param(Node):
    """A function/process parameter: either a channel or a plain value."""

    name: str
    type: TypeExpr
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class ProcDecl(Node):
    """A process declaration: channel signature plus routing body."""

    name: str
    params: Tuple[Param, ...]
    body: Tuple[Stmt, ...]
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class FunDecl(Node):
    """A function declaration with explicit result types (possibly empty)."""

    name: str
    params: Tuple[Param, ...]
    returns: Tuple[TypeExpr, ...]
    body: Tuple[Stmt, ...]
    location: SourceLocation = _NOLOC


@dataclass(frozen=True)
class Program(Node):
    """A complete FLICK compilation unit."""

    types: Tuple[TypeDecl, ...] = ()
    procs: Tuple[ProcDecl, ...] = ()
    funs: Tuple[FunDecl, ...] = ()

    def type_named(self, name: str) -> TypeDecl:
        for decl in self.types:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def proc_named(self, name: str) -> ProcDecl:
        for decl in self.procs:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def fun_named(self, name: str) -> FunDecl:
        for decl in self.funs:
            if decl.name == name:
                return decl
        raise KeyError(name)


def walk(node: Node):
    """Yield ``node`` and every AST node reachable from it (pre-order)."""
    yield node
    for fname in getattr(node, "__dataclass_fields__", {}):
        value = getattr(node, fname)
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
                elif (
                    isinstance(item, tuple)
                    and len(item) == 2
                    and isinstance(item[1], Node)
                ):
                    yield from walk(item[1])
