"""Recursive-descent parser for the FLICK language.

The grammar follows the paper's listings (Listing 1 in both its full and
condensed forms, and Listing 3).  Both layout conventions that appear in
the paper are accepted: signatures on the declaration line::

    proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
        | backends => client

and signatures on the first body line::

    fun update_cache:
        (cache: ref dict<string*string>, resp: cmd)
        -> (cmd)
        if resp.opcode = 0x0c:
            ...
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import FlickSyntaxError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import DEDENT, EOF, INDENT, INT, NAME, NEWLINE, STRING, Token

_COMPARISON_OPS = ("=", "==", "<>", "<", ">", "<=", ">=")
_ADDITIVE_OPS = ("+", "-")
_MULTIPLICATIVE_OPS = ("*", "/", "mod")


class Parser:
    """Parses a token stream into an :class:`ast.Program`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token stream helpers ---------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _at(self, kind: str, offset: int = 0) -> bool:
        return self._peek(offset).kind == kind

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: str) -> Token:
        tok = self._peek()
        if tok.kind != kind:
            raise FlickSyntaxError(
                f"expected {kind!r} but found {tok.kind!r}", tok.location
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _skip_newlines(self) -> None:
        while self._at(NEWLINE):
            self._advance()

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        types: List[ast.TypeDecl] = []
        procs: List[ast.ProcDecl] = []
        funs: List[ast.FunDecl] = []
        self._skip_newlines()
        while not self._at(EOF):
            if self._at("type"):
                types.append(self._parse_type_decl())
            elif self._at("proc"):
                procs.append(self._parse_proc_decl())
            elif self._at("fun"):
                funs.append(self._parse_fun_decl())
            else:
                tok = self._peek()
                raise FlickSyntaxError(
                    f"expected a declaration, found {tok.kind!r}", tok.location
                )
            self._skip_newlines()
        return ast.Program(tuple(types), tuple(procs), tuple(funs))

    # -- type declarations -----------------------------------------------

    def _parse_type_decl(self) -> ast.TypeDecl:
        loc = self._expect("type").location
        name = self._expect(NAME).value
        self._expect(":")
        self._expect("record")
        self._skip_newlines()
        self._expect(INDENT)
        fields: List[ast.FieldDecl] = []
        while not self._at(DEDENT):
            fields.append(self._parse_field_decl())
            self._skip_newlines()
        self._expect(DEDENT)
        if not fields:
            raise FlickSyntaxError(f"record type {name!r} has no fields", loc)
        return ast.TypeDecl(name, tuple(fields), loc)

    def _parse_field_decl(self) -> ast.FieldDecl:
        tok = self._peek()
        if self._accept("_"):
            fname: Optional[str] = None
        else:
            fname = self._expect(NAME).value
        self._expect(":")
        ftype = self._parse_type_expr()
        attrs: List[Tuple[str, ast.Expr]] = []
        if self._accept("{"):
            while not self._at("}"):
                aname = self._expect(NAME).value
                self._expect("=")
                attrs.append((aname, self._parse_expr()))
                if not self._accept(","):
                    break
            self._expect("}")
        return ast.FieldDecl(fname, ftype, tuple(attrs), tok.location)

    # -- type expressions ---------------------------------------------------

    def _parse_type_expr(self) -> ast.TypeExpr:
        if self._accept("ref"):
            return ast.RefType(self._parse_type_expr())
        if self._accept("dict"):
            self._expect("<")
            key = self._parse_type_expr()
            self._expect("*")
            value = self._parse_type_expr()
            self._expect(">")
            return ast.DictType(key, value)
        if self._accept("list"):
            self._expect("<")
            element = self._parse_type_expr()
            self._expect(">")
            return ast.ListType(element)
        name = self._expect(NAME).value
        return ast.NamedType(name)

    # -- parameters -----------------------------------------------------------

    def _parse_params(self) -> Tuple[ast.Param, ...]:
        self._expect("(")
        params: List[ast.Param] = []
        while not self._at(")"):
            params.append(self._parse_param())
            if not self._accept(","):
                break
        self._expect(")")
        return tuple(params)

    def _parse_param(self) -> ast.Param:
        loc = self._peek().location
        if self._at("["):
            chan = self._parse_channel_type(is_array=True)
            name = self._expect(NAME).value
            return ast.Param(name, chan, loc)
        if self._at("-") or (self._at(NAME) and self._at("/", 1)):
            chan = self._parse_channel_type(is_array=False)
            name = self._expect(NAME).value
            return ast.Param(name, chan, loc)
        name = self._expect(NAME).value
        self._expect(":")
        ptype = self._parse_type_expr()
        return ast.Param(name, ptype, loc)

    def _parse_channel_type(self, is_array: bool) -> ast.ChannelType:
        if is_array:
            self._expect("[")
        read = self._parse_channel_direction()
        self._expect("/")
        write = self._parse_channel_direction()
        if is_array:
            self._expect("]")
        return ast.ChannelType(read, write, is_array)

    def _parse_channel_direction(self) -> Optional[ast.TypeExpr]:
        if self._accept("-"):
            return None
        return ast.NamedType(self._expect(NAME).value)

    # -- processes ------------------------------------------------------------

    def _parse_proc_decl(self) -> ast.ProcDecl:
        loc = self._expect("proc").location
        name = self._expect(NAME).value
        self._expect(":")
        if self._at("("):
            # Form A: signature on the declaration line.
            params = self._parse_params()
            self._accept(":")
            self._skip_newlines()
            self._expect(INDENT)
            body = self._parse_stmt_block(in_proc=True)
            return ast.ProcDecl(name, params, body, loc)
        # Form B: signature on the first body line.
        self._skip_newlines()
        self._expect(INDENT)
        params = self._parse_params()
        self._accept(":")
        self._skip_newlines()
        body = self._parse_stmt_block(in_proc=True)
        return ast.ProcDecl(name, params, body, loc)

    # -- functions ------------------------------------------------------------

    def _parse_fun_decl(self) -> ast.FunDecl:
        loc = self._expect("fun").location
        name = self._expect(NAME).value
        self._expect(":")
        indented_signature = False
        if not self._at("("):
            self._skip_newlines()
            self._expect(INDENT)
            indented_signature = True
        params = self._parse_params()
        self._skip_newlines()
        self._expect("->")
        self._expect("(")
        returns: List[ast.TypeExpr] = []
        while not self._at(")"):
            returns.append(self._parse_type_expr())
            if not self._accept(","):
                break
        self._expect(")")
        self._accept(":")
        self._skip_newlines()
        if not indented_signature:
            self._expect(INDENT)
        body = self._parse_stmt_block(in_proc=False)
        return ast.FunDecl(name, params, tuple(returns), body, loc)

    # -- statements ------------------------------------------------------------

    def _parse_stmt_block(self, in_proc: bool) -> Tuple[ast.Stmt, ...]:
        """Parse statements until the enclosing DEDENT (which is consumed)."""
        stmts: List[ast.Stmt] = []
        self._skip_newlines()
        while not self._at(DEDENT) and not self._at(EOF):
            stmts.append(self._parse_stmt(in_proc))
            self._skip_newlines()
        self._accept(DEDENT)
        return tuple(stmts)

    def _parse_indented_block(self, in_proc: bool) -> Tuple[ast.Stmt, ...]:
        self._skip_newlines()
        self._expect(INDENT)
        return self._parse_stmt_block(in_proc)

    def _parse_stmt(self, in_proc: bool) -> ast.Stmt:
        if in_proc:
            self._accept("|")  # optional rule marker, as in condensed Listing 1
        tok = self._peek()
        if self._at("global"):
            return self._parse_global()
        if self._at("let"):
            return self._parse_let(in_proc)
        if self._at("if"):
            return self._parse_if(in_proc)
        if self._at("foldt"):
            expr = self._parse_foldt(in_proc)
            return ast.ExprStmt(expr, tok.location)
        return self._parse_simple_stmt(in_proc)

    def _parse_global(self) -> ast.Stmt:
        loc = self._expect("global").location
        name = self._expect(NAME).value
        self._expect(":=")
        init = self._parse_expr()
        self._expect(NEWLINE)
        return ast.GlobalDecl(name, init, loc)

    def _parse_let(self, in_proc: bool) -> ast.Stmt:
        loc = self._expect("let").location
        name = self._expect(NAME).value
        if not self._accept("="):
            self._expect(":=")
        if self._at("foldt"):
            value: ast.Expr = self._parse_foldt(in_proc)
        else:
            value = self._parse_expr()
            self._expect(NEWLINE)
        return ast.LetStmt(name, value, loc)

    def _parse_if(self, in_proc: bool) -> ast.Stmt:
        loc = self._expect("if").location
        condition = self._parse_expr()
        self._expect(":")
        then_body = self._parse_indented_block(in_proc)
        else_body: Tuple[ast.Stmt, ...] = ()
        self._skip_newlines()
        if self._at("elif"):
            # Desugar ``elif`` into a nested IfStmt in the else branch.
            nested = self._parse_if_continuation(in_proc)
            else_body = (nested,)
        elif self._accept("else"):
            self._expect(":")
            else_body = self._parse_indented_block(in_proc)
        return ast.IfStmt(condition, then_body, else_body, loc)

    def _parse_if_continuation(self, in_proc: bool) -> ast.Stmt:
        loc = self._expect("elif").location
        condition = self._parse_expr()
        self._expect(":")
        then_body = self._parse_indented_block(in_proc)
        else_body: Tuple[ast.Stmt, ...] = ()
        self._skip_newlines()
        if self._at("elif"):
            else_body = (self._parse_if_continuation(in_proc),)
        elif self._accept("else"):
            self._expect(":")
            else_body = self._parse_indented_block(in_proc)
        return ast.IfStmt(condition, then_body, else_body, loc)

    def _parse_simple_stmt(self, in_proc: bool) -> ast.Stmt:
        loc = self._peek().location
        expr = self._parse_expr()
        if self._accept(":="):
            value = self._parse_expr()
            self._expect(NEWLINE)
            return ast.AssignStmt(expr, value, loc)
        if self._at("=>"):
            if in_proc:
                return self._parse_pipeline(expr, loc)
            self._advance()
            channel = self._parse_expr()
            self._expect(NEWLINE)
            return ast.SendStmt(expr, channel, loc)
        self._expect(NEWLINE)
        return ast.ExprStmt(expr, loc)

    def _parse_pipeline(self, first: ast.Expr, loc) -> ast.Stmt:
        stages = [self._expr_to_stage(first)]
        while self._accept("=>"):
            stages.append(self._expr_to_stage(self._parse_expr()))
        self._expect(NEWLINE)
        return ast.PipelineStmt(tuple(stages), loc)

    @staticmethod
    def _expr_to_stage(expr: ast.Expr) -> ast.PipelineStage:
        if isinstance(expr, ast.Call):
            return ast.PipelineStage(
                expr=None, func=expr.func, args=expr.args, location=expr.location
            )
        return ast.PipelineStage(expr=expr, location=getattr(expr, "location", None))

    # -- foldt ------------------------------------------------------------------

    def _parse_foldt(self, in_proc: bool) -> ast.FoldTExpr:
        loc = self._expect("foldt").location
        self._expect("on")
        source = self._parse_expr()
        self._expect("ordering")
        elem_var = self._expect(NAME).value
        left_var = self._expect(NAME).value
        self._expect(",")
        right_var = self._expect(NAME).value
        self._expect("by")
        order_expr = self._parse_expr()
        self._expect("as")
        key_alias = self._expect(NAME).value
        self._expect(":")
        body = self._parse_indented_block(in_proc=False)
        return ast.FoldTExpr(
            source,
            elem_var,
            left_var,
            right_var,
            order_expr,
            key_alias,
            body,
            loc,
        )

    # -- expressions --------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at("or"):
            loc = self._advance().location
            left = ast.BinOp("or", left, self._parse_and(), loc)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at("and"):
            loc = self._advance().location
            left = ast.BinOp("and", left, self._parse_not(), loc)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at("not"):
            loc = self._advance().location
            return ast.UnaryOp("not", self._parse_not(), loc)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind in _COMPARISON_OPS:
            op_tok = self._advance()
            op = "=" if op_tok.kind == "==" else op_tok.kind
            left = ast.BinOp(op, left, self._parse_additive(), op_tok.location)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE_OPS:
            op_tok = self._advance()
            left = ast.BinOp(
                op_tok.kind, left, self._parse_multiplicative(), op_tok.location
            )
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE_OPS:
            op_tok = self._advance()
            left = ast.BinOp(op_tok.kind, left, self._parse_unary(), op_tok.location)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._at("-"):
            loc = self._advance().location
            return ast.UnaryOp("-", self._parse_unary(), loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_atom()
        while True:
            if self._accept("."):
                tok = self._expect(NAME)
                expr = ast.FieldAccess(expr, tok.value, tok.location)
            elif self._at("["):
                loc = self._advance().location
                index = self._parse_expr()
                self._expect("]")
                expr = ast.Index(expr, index, loc)
            else:
                return expr

    def _parse_atom(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == INT:
            self._advance()
            return ast.IntLit(tok.value, tok.location)
        if tok.kind == STRING:
            self._advance()
            return ast.StrLit(tok.value, tok.location)
        if tok.kind == "True":
            self._advance()
            return ast.BoolLit(True, tok.location)
        if tok.kind == "False":
            self._advance()
            return ast.BoolLit(False, tok.location)
        if tok.kind == "None":
            self._advance()
            return ast.NoneLit(tok.location)
        if tok.kind in ("fold", "map", "filter"):
            # Higher-order builtins parse as ordinary calls; the first
            # argument must be a function name (checked statically).
            self._advance()
            return self._parse_call(tok.kind, tok.location)
        if tok.kind == NAME:
            self._advance()
            if self._at("("):
                return self._parse_call(tok.value, tok.location)
            return ast.Var(tok.value, tok.location)
        if tok.kind == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise FlickSyntaxError(
            f"expected an expression, found {tok.kind!r}", tok.location
        )

    def _parse_call(self, func: str, loc) -> ast.Expr:
        self._expect("(")
        args: List[ast.Expr] = []
        while not self._at(")"):
            args.append(self._parse_expr())
            if not self._accept(","):
                break
        self._expect(")")
        return ast.Call(func, tuple(args), loc)


def parse(source: str, filename: str = "<flick>") -> ast.Program:
    """Parse FLICK source text into a :class:`repro.lang.ast.Program`."""
    return Parser(tokenize(source, filename)).parse_program()
